package res

import (
	"errors"
	"testing"
	"time"
)

var t0 = time.Date(2012, 6, 1, 0, 0, 0, 0, time.UTC)

func TestPowerCurve(t *testing.T) {
	tb := DefaultTurbine()
	tests := []struct {
		speed float64
		want  float64
	}{
		{0, 0},
		{2.9, 0},  // below cut-in
		{12, 500}, // rated
		{20, 500}, // above rated, below cut-out
		{25, 0},   // cut-out
		{30, 0},   // above cut-out
	}
	for _, tc := range tests {
		if got := tb.Power(tc.speed); got != tc.want {
			t.Errorf("Power(%v) = %v, want %v", tc.speed, got, tc.want)
		}
	}
	// Ramp region is monotone and between 0 and rated.
	prev := 0.0
	for s := 3.0; s < 12; s += 0.5 {
		p := tb.Power(s)
		if p < prev || p < 0 || p > tb.RatedPowerKW {
			t.Fatalf("ramp not monotone at %v: %v after %v", s, p, prev)
		}
		prev = p
	}
}

func TestModelValidate(t *testing.T) {
	bad := []WindModel{
		{MeanSpeed: -1, Persistence: 0.9},
		{MeanSpeed: 7, Persistence: 1.0},
		{MeanSpeed: 7, Persistence: -0.1},
		{MeanSpeed: 7, Persistence: 0.9, Volatility: -1},
	}
	for i, m := range bad {
		if err := m.Validate(); !errors.Is(err, ErrModel) {
			t.Errorf("model %d: err = %v, want ErrModel", i, err)
		}
	}
	if err := DefaultWindModel().Validate(); err != nil {
		t.Errorf("default model invalid: %v", err)
	}
}

func TestSimulateShapeAndDeterminism(t *testing.T) {
	s, err := Simulate(DefaultWindModel(), DefaultTurbine(), t0.Add(5*time.Hour), 3, 15*time.Minute, 1)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if s.Len() != 3*96 {
		t.Errorf("len = %d, want %d", s.Len(), 3*96)
	}
	if !s.Start().Equal(t0) {
		t.Errorf("start = %v, want midnight", s.Start())
	}
	if s.Total() <= 0 {
		t.Error("no production at default parameters")
	}
	// Energy per interval bounded by rated power.
	maxPer := DefaultTurbine().RatedPowerKW * 0.25
	for i := 0; i < s.Len(); i++ {
		if s.Value(i) < 0 || s.Value(i) > maxPer+1e-9 {
			t.Fatalf("interval %d energy %v outside [0, %v]", i, s.Value(i), maxPer)
		}
	}
	s2, err := Simulate(DefaultWindModel(), DefaultTurbine(), t0, 3, 15*time.Minute, 1)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if s.Total() != s2.Total() {
		t.Error("same seed differs")
	}
	s3, _ := Simulate(DefaultWindModel(), DefaultTurbine(), t0, 3, 15*time.Minute, 2)
	if s.Total() == s3.Total() {
		t.Error("different seeds identical")
	}
}

func TestSimulateErrors(t *testing.T) {
	if _, err := Simulate(DefaultWindModel(), DefaultTurbine(), t0, 0, 15*time.Minute, 1); err == nil {
		t.Error("zero days succeeded")
	}
	if _, err := Simulate(DefaultWindModel(), DefaultTurbine(), t0, 1, 7*time.Hour, 1); err == nil {
		t.Error("non-dividing resolution succeeded")
	}
	if _, err := Simulate(WindModel{Persistence: 2}, DefaultTurbine(), t0, 1, 15*time.Minute, 1); err == nil {
		t.Error("invalid model succeeded")
	}
}

func TestForecastWithError(t *testing.T) {
	actual, err := Simulate(DefaultWindModel(), DefaultTurbine(), t0, 2, 15*time.Minute, 3)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	fc := ForecastWithError(actual, 0.1, 4)
	if fc.Len() != actual.Len() {
		t.Fatal("forecast length mismatch")
	}
	var diffs int
	for i := 0; i < fc.Len(); i++ {
		if fc.Value(i) < 0 {
			t.Fatalf("negative forecast at %d", i)
		}
		if fc.Value(i) != actual.Value(i) {
			diffs++
		}
	}
	if diffs == 0 {
		t.Error("forecast identical to actual")
	}
	// Zero error: identity.
	same := ForecastWithError(actual, 0, 4)
	for i := 0; i < same.Len(); i++ {
		if same.Value(i) != actual.Value(i) {
			t.Fatal("zero-error forecast differs")
		}
	}
}
