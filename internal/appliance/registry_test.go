package appliance

import (
	"testing"
	"time"
)

func TestDefaultRegistryValid(t *testing.T) {
	r := Default()
	if r.Len() < 11 {
		t.Fatalf("default registry has %d appliances, want >= 11", r.Len())
	}
	for _, a := range r.All() {
		if err := a.Validate(); err != nil {
			t.Errorf("%s: %v", a.Name, err)
		}
	}
}

// TestTable1Rows checks the six rows of the paper's Table 1 are present with
// the published energy consumption ranges.
func TestTable1Rows(t *testing.T) {
	r := Default()
	rows := []struct {
		name     string
		min, max float64
	}{
		{"vacuum cleaning robot X", 0.5, 1.0},
		{"washing machine Y", 1.2, 3.0},
		{"dishwasher Z", 1.2, 2.0},
		{"small electric vehicle", 30, 50},
		{"medium electric vehicle", 50, 60},
		{"large electric vehicle", 60, 70},
	}
	for _, row := range rows {
		a, ok := r.Get(row.name)
		if !ok {
			t.Errorf("missing Table 1 appliance %q", row.name)
			continue
		}
		if a.MinRunEnergy != row.min || a.MaxRunEnergy != row.max {
			t.Errorf("%s: range [%v, %v], want [%v, %v]",
				row.name, a.MinRunEnergy, a.MaxRunEnergy, row.min, row.max)
		}
	}
}

// TestRoombaExample checks the paper's §4.1 example: the vacuum robot runs
// once per day with 22 hours of time flexibility.
func TestRoombaExample(t *testing.T) {
	r := Default()
	a, ok := r.Get("vacuum cleaning robot X")
	if !ok {
		t.Fatal("missing vacuum robot")
	}
	if a.RunsPerDay != 1.0 {
		t.Errorf("RunsPerDay = %v, want 1", a.RunsPerDay)
	}
	if a.TimeFlexibility != 22*time.Hour {
		t.Errorf("TimeFlexibility = %v, want 22h", a.TimeFlexibility)
	}
	if !a.Flexible {
		t.Error("robot not flexible")
	}
}

func TestRegistryAddDuplicate(t *testing.T) {
	r := NewRegistry()
	a := testAppliance()
	if err := r.Add(a); err != nil {
		t.Fatalf("Add: %v", err)
	}
	if err := r.Add(a); err == nil {
		t.Error("duplicate Add succeeded")
	}
}

func TestRegistryAddInvalid(t *testing.T) {
	r := NewRegistry()
	a := testAppliance()
	a.Envelope = nil
	if err := r.Add(a); err == nil {
		t.Error("invalid Add succeeded")
	}
	if r.Len() != 0 {
		t.Error("invalid appliance registered")
	}
}

func TestRegistryLookupAndOrder(t *testing.T) {
	r := Default()
	if _, ok := r.Get("no such appliance"); ok {
		t.Error("Get of missing appliance returned ok")
	}
	all := r.All()
	if all[0].Name != "vacuum cleaning robot X" {
		t.Errorf("insertion order broken: first = %s", all[0].Name)
	}
	names := r.Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("Names not sorted: %q >= %q", names[i-1], names[i])
		}
	}
}

func TestFlexibleAndByCategory(t *testing.T) {
	r := Default()
	for _, a := range r.Flexible() {
		if !a.Flexible {
			t.Errorf("%s returned by Flexible but not flexible", a.Name)
		}
	}
	// Fridge, oven and TV must not be flexible.
	for _, name := range []string{"refrigerator", "oven", "television"} {
		a, ok := r.Get(name)
		if !ok {
			t.Fatalf("missing %s", name)
		}
		if a.Flexible {
			t.Errorf("%s should be inflexible", name)
		}
	}
	vehicles := r.ByCategory(Vehicle)
	if len(vehicles) != 3 {
		t.Errorf("vehicles = %d, want 3", len(vehicles))
	}
	for _, a := range vehicles {
		if a.Category != Vehicle {
			t.Errorf("%s in Vehicle query has category %v", a.Name, a.Category)
		}
	}
}

// TestEVChargeDurations checks EV envelopes cover multi-hour charges, which
// the Fig. 1 scenario depends on.
func TestEVChargeDurations(t *testing.T) {
	r := Default()
	tests := map[string]time.Duration{
		"small electric vehicle":  6 * time.Hour,
		"medium electric vehicle": 7 * time.Hour,
		"large electric vehicle":  8 * time.Hour,
	}
	for name, want := range tests {
		a, _ := r.Get(name)
		if got := a.RunDuration(); got != want {
			t.Errorf("%s duration = %v, want %v", name, got, want)
		}
	}
}
