// Package appliance models the fine-grained appliance knowledge base the
// appliance-level extraction approaches rely on (Table 1 of the paper):
// per-appliance energy consumption ranges and energy profiles with min/max
// bands at sub-15-minute granularity, plus the usage metadata (frequency,
// time flexibility, preferred hours) that the frequency- and schedule-based
// extractors consume.
package appliance

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/num"
)

// Category groups appliances by their role in the household.
type Category int

const (
	// Wet covers washing machines, dishwashers, dryers.
	Wet Category = iota
	// Cleaning covers vacuum robots and similar.
	Cleaning
	// Vehicle covers electric-vehicle charging.
	Vehicle
	// Kitchen covers ovens, stoves, kettles.
	Kitchen
	// Cold covers refrigeration (continuously cycling, inflexible).
	Cold
	// Entertainment covers TV and electronics.
	Entertainment
	// Heating covers water heaters and heat pumps.
	Heating
)

// String implements fmt.Stringer.
func (c Category) String() string {
	switch c {
	case Wet:
		return "wet"
	case Cleaning:
		return "cleaning"
	case Vehicle:
		return "vehicle"
	case Kitchen:
		return "kitchen"
	case Cold:
		return "cold"
	case Entertainment:
		return "entertainment"
	case Heating:
		return "heating"
	default:
		return "unknown"
	}
}

// Band bounds the energy an appliance may draw during one minute of a run,
// in kWh. Table 1 calls for "energy profiles with min and max ranges for
// every time stamp".
type Band struct {
	Min float64 `json:"min"`
	Max float64 `json:"max"`
}

// ErrInvalid is wrapped by all Appliance validation failures.
var ErrInvalid = errors.New("appliance: invalid specification")

// Appliance is one manufactured appliance model. Profile granularity is
// fixed at one minute ("granularity must be even smaller than 15 min").
type Appliance struct {
	// Name identifies the appliance model, e.g. "washing machine Y".
	Name string `json:"name"`
	// Manufacturer is informational.
	Manufacturer string   `json:"manufacturer"`
	Category     Category `json:"category"`

	// MinRunEnergy and MaxRunEnergy bound the total energy of a single run
	// (Table 1's "Energy Consumption Range").
	MinRunEnergy float64 `json:"min_run_energy_kwh"`
	MaxRunEnergy float64 `json:"max_run_energy_kwh"`

	// Envelope holds the per-minute min/max energy band over a run; its
	// length defines the run duration in minutes.
	Envelope []Band `json:"envelope"`

	// Flexible marks appliances whose usage can be shifted in time (washing
	// machine, dishwasher, EV, robot) as opposed to on-demand ones (TV,
	// oven) or continuous ones (fridge).
	Flexible bool `json:"flexible"`
	// RunsPerDay is the average usage frequency (e.g. 1.0 for a daily
	// vacuum robot, 0.5 for an every-other-day dishwasher).
	RunsPerDay float64 `json:"runs_per_day"`
	// TimeFlexibility is how far a flexible run can be shifted (the paper's
	// Roomba example: 22 hours — charged before the next daily usage).
	TimeFlexibility time.Duration `json:"time_flexibility"`
	// HourWeights gives the relative propensity of a run starting in each
	// hour of day; all zeros means uniform.
	HourWeights [24]float64 `json:"hour_weights"`
	// WeekendFactor multiplies RunsPerDay on weekends (e.g. the paper's
	// dishwasher used more on weekends, §4.2).
	WeekendFactor float64 `json:"weekend_factor"`
}

// RunDuration reports the duration of one run.
func (a *Appliance) RunDuration() time.Duration {
	return time.Duration(len(a.Envelope)) * time.Minute
}

// Validate checks internal consistency of the specification.
func (a *Appliance) Validate() error {
	if a.Name == "" {
		return fmt.Errorf("%w: empty name", ErrInvalid)
	}
	if len(a.Envelope) == 0 {
		return fmt.Errorf("%w: %s has empty envelope", ErrInvalid, a.Name)
	}
	if a.MinRunEnergy < 0 || a.MaxRunEnergy < a.MinRunEnergy {
		return fmt.Errorf("%w: %s run energy range [%v, %v]", ErrInvalid, a.Name, a.MinRunEnergy, a.MaxRunEnergy)
	}
	var envMin, envMax float64
	for i, b := range a.Envelope {
		if b.Min < 0 || b.Max < b.Min {
			return fmt.Errorf("%w: %s envelope minute %d band [%v, %v]", ErrInvalid, a.Name, i, b.Min, b.Max)
		}
		envMin += b.Min
		envMax += b.Max
	}
	// The run-energy range must be achievable within the envelope.
	if a.MinRunEnergy < envMin-num.DefaultTol || a.MaxRunEnergy > envMax+num.DefaultTol {
		return fmt.Errorf("%w: %s run range [%v, %v] outside envelope range [%v, %v]",
			ErrInvalid, a.Name, a.MinRunEnergy, a.MaxRunEnergy, envMin, envMax)
	}
	if a.RunsPerDay < 0 {
		return fmt.Errorf("%w: %s negative frequency", ErrInvalid, a.Name)
	}
	if a.TimeFlexibility < 0 {
		return fmt.Errorf("%w: %s negative time flexibility", ErrInvalid, a.Name)
	}
	return nil
}

// NominalProfile reports the per-minute midpoint of the envelope — the
// appliance's canonical signature shape used for matching during
// disaggregation.
func (a *Appliance) NominalProfile() []float64 {
	p := make([]float64, len(a.Envelope))
	for i, b := range a.Envelope {
		p[i] = (b.Min + b.Max) / 2
	}
	return p
}

// NominalEnergy reports the total energy of the nominal profile.
func (a *Appliance) NominalEnergy() float64 {
	var e float64
	for _, b := range a.Envelope {
		e += (b.Min + b.Max) / 2
	}
	return e
}

// SignatureAt downsamples the nominal profile to the given resolution,
// summing per-minute energies into coarser buckets. The resolution must be
// a whole number of minutes. A trailing partial bucket is kept.
func (a *Appliance) SignatureAt(resolution time.Duration) ([]float64, error) {
	if resolution < time.Minute || resolution%time.Minute != 0 {
		return nil, fmt.Errorf("appliance: signature resolution %v must be a positive whole number of minutes", resolution)
	}
	per := int(resolution / time.Minute)
	nom := a.NominalProfile()
	n := (len(nom) + per - 1) / per
	out := make([]float64, n)
	for i, v := range nom {
		out[i/per] += v
	}
	return out, nil
}

// SampleRun draws one run realisation: a total energy uniform in
// [MinRunEnergy, MaxRunEnergy] distributed over the envelope. The shape
// follows the nominal profile scaled toward the feasible band, so every
// minute stays within [Min, Max] and the minutes sum to the drawn energy.
func (a *Appliance) SampleRun(rng *rand.Rand) []float64 {
	target := a.MinRunEnergy + rng.Float64()*(a.MaxRunEnergy-a.MinRunEnergy)
	return a.runWithEnergy(target)
}

// runWithEnergy distributes total energy over the envelope. The energy is
// clamped into the envelope's feasible total range. Within the range, each
// minute interpolates linearly between its band bounds by the same fraction,
// which keeps the shape inside the envelope exactly.
func (a *Appliance) runWithEnergy(total float64) []float64 {
	var envMin, envMax float64
	for _, b := range a.Envelope {
		envMin += b.Min
		envMax += b.Max
	}
	if total < envMin {
		total = envMin
	}
	if total > envMax {
		total = envMax
	}
	frac := 0.0
	if envMax > envMin {
		frac = (total - envMin) / (envMax - envMin)
	}
	out := make([]float64, len(a.Envelope))
	for i, b := range a.Envelope {
		out[i] = b.Min + frac*(b.Max-b.Min)
	}
	return out
}

// SampleStartHour draws a start hour according to HourWeights, falling back
// to uniform when all weights are zero.
func (a *Appliance) SampleStartHour(rng *rand.Rand) int {
	var total float64
	for _, w := range a.HourWeights {
		total += w
	}
	if total <= 0 {
		return rng.Intn(24)
	}
	x := rng.Float64() * total
	for h, w := range a.HourWeights {
		x -= w
		if x < 0 {
			return h
		}
	}
	return 23
}

// FlatEnvelope builds an envelope of n minutes with a constant per-minute
// band sized so the nominal run energy equals nominalKWh and each minute may
// vary by +-spread (fraction of the nominal per-minute energy).
func FlatEnvelope(n int, nominalKWh, spread float64) []Band {
	per := nominalKWh / float64(n)
	env := make([]Band, n)
	for i := range env {
		env[i] = Band{Min: per * (1 - spread), Max: per * (1 + spread)}
	}
	return env
}

// ShapedEnvelope builds an envelope of len(shape) minutes whose nominal
// per-minute energies follow shape (normalised to sum to nominalKWh), each
// minute with a +-spread band. Negative shape entries are treated as zero.
func ShapedEnvelope(shape []float64, nominalKWh, spread float64) []Band {
	var sum float64
	for _, s := range shape {
		if s > 0 {
			sum += s
		}
	}
	env := make([]Band, len(shape))
	for i, s := range shape {
		if s < 0 {
			s = 0
		}
		per := nominalKWh * s / math.Max(sum, 1e-12)
		env[i] = Band{Min: per * (1 - spread), Max: per * (1 + spread)}
	}
	return env
}
