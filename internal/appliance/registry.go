package appliance

import (
	"fmt"
	"sort"
	"time"
)

// Registry is the appliance specification catalogue — the paper's "context
// information: the specification of the electricity usage of all appliances
// ever manufactured in the world" (§4.1), pragmatically reduced to the
// models the simulated households use. Iteration order is insertion order,
// so experiments are deterministic.
type Registry struct {
	byName map[string]*Appliance
	order  []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*Appliance)}
}

// Add validates and registers an appliance. Duplicate names are rejected.
func (r *Registry) Add(a *Appliance) error {
	if err := a.Validate(); err != nil {
		return err
	}
	if _, dup := r.byName[a.Name]; dup {
		return fmt.Errorf("%w: duplicate appliance %q", ErrInvalid, a.Name)
	}
	r.byName[a.Name] = a
	r.order = append(r.order, a.Name)
	return nil
}

// Get looks an appliance up by name.
func (r *Registry) Get(name string) (*Appliance, bool) {
	a, ok := r.byName[name]
	return a, ok
}

// Len reports the number of registered appliances.
func (r *Registry) Len() int { return len(r.order) }

// All returns every appliance in insertion order.
func (r *Registry) All() []*Appliance {
	out := make([]*Appliance, 0, len(r.order))
	for _, name := range r.order {
		out = append(out, r.byName[name])
	}
	return out
}

// Flexible returns the appliances marked shiftable, in insertion order.
func (r *Registry) Flexible() []*Appliance {
	var out []*Appliance
	for _, a := range r.All() {
		if a.Flexible {
			out = append(out, a)
		}
	}
	return out
}

// ByCategory returns the appliances of one category, in insertion order.
func (r *Registry) ByCategory(c Category) []*Appliance {
	var out []*Appliance
	for _, a := range r.All() {
		if a.Category == c {
			out = append(out, a)
		}
	}
	return out
}

// Names returns the sorted appliance names.
func (r *Registry) Names() []string {
	out := append([]string(nil), r.order...)
	sort.Strings(out)
	return out
}

// rangeEnvelope builds an envelope whose feasible total-energy range is
// exactly [minE, maxE]: the nominal per-minute energy follows shape with
// total (minE+maxE)/2, and the relative band spread is chosen so that
// summing all minima gives minE and all maxima gives maxE.
func rangeEnvelope(shape []float64, minE, maxE float64) []Band {
	nominal := (minE + maxE) / 2
	spread := 0.0
	if nominal > 0 {
		spread = (maxE - minE) / (maxE + minE)
	}
	return ShapedEnvelope(shape, nominal, spread)
}

// flatShape returns n equal weights.
func flatShape(n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = 1
	}
	return s
}

// washShape models a washing-machine cycle: a heating phase up front, a long
// low drum phase, and spin spikes at the end.
func washShape(n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		switch {
		case i < n/4: // heating
			s[i] = 5
		case i >= n-n/8: // spin
			s[i] = 3
		default: // drum
			s[i] = 1
		}
	}
	return s
}

// dishShape models a dishwasher cycle: two heating bumps (wash and dry).
func dishShape(n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		switch {
		case i < n/5, i >= 3*n/5 && i < 4*n/5: // heat phases
			s[i] = 4
		default:
			s[i] = 1
		}
	}
	return s
}

// taperShape models battery charging: constant current then a taper.
func taperShape(n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		if i < 3*n/4 {
			s[i] = 4
		} else {
			// Linear taper over the last quarter.
			s[i] = 4 * float64(n-i) / float64(n-3*n/4)
		}
	}
	return s
}

// eveningHours weights starts into the 17:00–22:00 block.
func eveningHours() (w [24]float64) {
	for h := 17; h <= 22; h++ {
		w[h] = 1
	}
	return w
}

// nightHours weights starts into the 22:00–02:00 block (EV charging).
func nightHours() (w [24]float64) {
	w[22], w[23], w[0], w[1], w[2] = 3, 3, 2, 1, 1
	return w
}

// morningHours weights starts into the 08:00–12:00 block.
func morningHours() (w [24]float64) {
	for h := 8; h <= 12; h++ {
		w[h] = 1
	}
	return w
}

// Default builds the registry with the six Table 1 rows plus the common
// household appliances the simulator composes load curves from. All
// specifications validate; Default panics otherwise (a programming error).
func Default() *Registry {
	r := NewRegistry()
	add := func(a *Appliance) {
		if err := r.Add(a); err != nil {
			panic(fmt.Sprintf("appliance: default registry: %v", err))
		}
	}

	// --- Table 1 rows -------------------------------------------------
	add(&Appliance{
		Name: "vacuum cleaning robot X", Manufacturer: "Manufacturer X", Category: Cleaning,
		MinRunEnergy: 0.5, MaxRunEnergy: 1.0,
		Envelope: rangeEnvelope(taperShape(90), 0.5, 1.0), // 90-min charge
		Flexible: true, RunsPerDay: 1.0, TimeFlexibility: 22 * time.Hour,
		HourWeights: morningHours(), WeekendFactor: 1.0,
	})
	add(&Appliance{
		Name: "washing machine Y", Manufacturer: "Manufacturer Y", Category: Wet,
		MinRunEnergy: 1.2, MaxRunEnergy: 3.0,
		Envelope: rangeEnvelope(washShape(110), 1.2, 3.0),
		Flexible: true, RunsPerDay: 0.6, TimeFlexibility: 8 * time.Hour,
		HourWeights: eveningHours(), WeekendFactor: 1.5,
	})
	add(&Appliance{
		Name: "dishwasher Z", Manufacturer: "Manufacturer Z", Category: Wet,
		MinRunEnergy: 1.2, MaxRunEnergy: 2.0,
		Envelope: rangeEnvelope(dishShape(100), 1.2, 2.0),
		Flexible: true, RunsPerDay: 0.8, TimeFlexibility: 10 * time.Hour,
		HourWeights: eveningHours(), WeekendFactor: 1.4,
	})
	add(&Appliance{
		Name: "small electric vehicle", Category: Vehicle,
		MinRunEnergy: 30, MaxRunEnergy: 50,
		Envelope: rangeEnvelope(taperShape(360), 30, 50), // 6-h charge
		Flexible: true, RunsPerDay: 0.3, TimeFlexibility: 7 * time.Hour,
		HourWeights: nightHours(), WeekendFactor: 0.7,
	})
	add(&Appliance{
		Name: "medium electric vehicle", Category: Vehicle,
		MinRunEnergy: 50, MaxRunEnergy: 60,
		Envelope: rangeEnvelope(taperShape(420), 50, 60), // 7-h charge
		Flexible: true, RunsPerDay: 0.25, TimeFlexibility: 7 * time.Hour,
		HourWeights: nightHours(), WeekendFactor: 0.7,
	})
	add(&Appliance{
		Name: "large electric vehicle", Category: Vehicle,
		MinRunEnergy: 60, MaxRunEnergy: 70,
		Envelope: rangeEnvelope(taperShape(480), 60, 70), // 8-h charge
		Flexible: true, RunsPerDay: 0.2, TimeFlexibility: 6 * time.Hour,
		HourWeights: nightHours(), WeekendFactor: 0.7,
	})

	// --- Common household appliances beyond Table 1 --------------------
	add(&Appliance{
		Name: "tumble dryer", Category: Wet,
		MinRunEnergy: 2.0, MaxRunEnergy: 4.0,
		Envelope: rangeEnvelope(flatShape(80), 2.0, 4.0),
		Flexible: true, RunsPerDay: 0.4, TimeFlexibility: 6 * time.Hour,
		HourWeights: eveningHours(), WeekendFactor: 1.5,
	})
	add(&Appliance{
		Name: "water heater", Category: Heating,
		MinRunEnergy: 1.5, MaxRunEnergy: 2.5,
		Envelope: rangeEnvelope(flatShape(60), 1.5, 2.5),
		Flexible: true, RunsPerDay: 1.0, TimeFlexibility: 4 * time.Hour,
		HourWeights: morningHours(), WeekendFactor: 1.0,
	})
	add(&Appliance{
		Name: "oven", Category: Kitchen,
		MinRunEnergy: 0.8, MaxRunEnergy: 1.6,
		Envelope: rangeEnvelope(flatShape(45), 0.8, 1.6),
		Flexible: false, RunsPerDay: 0.7, TimeFlexibility: 0,
		HourWeights: eveningHours(), WeekendFactor: 1.3,
	})
	add(&Appliance{
		Name: "television", Category: Entertainment,
		MinRunEnergy: 0.2, MaxRunEnergy: 0.5,
		Envelope: rangeEnvelope(flatShape(180), 0.2, 0.5),
		Flexible: false, RunsPerDay: 1.2, TimeFlexibility: 0,
		HourWeights: eveningHours(), WeekendFactor: 1.2,
	})
	add(&Appliance{
		Name: "refrigerator", Category: Cold,
		MinRunEnergy: 0.03, MaxRunEnergy: 0.05,
		// One compressor cycle: ~15 min on.
		Envelope: rangeEnvelope(flatShape(15), 0.03, 0.05),
		Flexible: false, RunsPerDay: 30, TimeFlexibility: 0,
		WeekendFactor: 1.0,
	})
	return r
}
