package appliance

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func testAppliance() *Appliance {
	return &Appliance{
		Name:         "test washer",
		Category:     Wet,
		MinRunEnergy: 1.2,
		MaxRunEnergy: 3.0,
		Envelope:     rangeEnvelope(washShape(110), 1.2, 3.0),
		Flexible:     true,
		RunsPerDay:   0.6,
	}
}

func TestValidateOK(t *testing.T) {
	if err := testAppliance().Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Appliance)
	}{
		{"empty name", func(a *Appliance) { a.Name = "" }},
		{"empty envelope", func(a *Appliance) { a.Envelope = nil }},
		{"negative min energy", func(a *Appliance) { a.MinRunEnergy = -1 }},
		{"max below min", func(a *Appliance) { a.MaxRunEnergy = a.MinRunEnergy - 1 }},
		{"band inverted", func(a *Appliance) { a.Envelope[0] = Band{Min: 2, Max: 1} }},
		{"band negative", func(a *Appliance) { a.Envelope[0] = Band{Min: -1, Max: 1} }},
		{"range outside envelope", func(a *Appliance) { a.MaxRunEnergy = 100 }},
		{"negative frequency", func(a *Appliance) { a.RunsPerDay = -1 }},
		{"negative time flexibility", func(a *Appliance) { a.TimeFlexibility = -time.Hour }},
	}
	for _, tc := range tests {
		a := testAppliance()
		tc.mutate(a)
		if err := a.Validate(); !errors.Is(err, ErrInvalid) {
			t.Errorf("%s: Validate = %v, want ErrInvalid", tc.name, err)
		}
	}
}

func TestRangeEnvelopeCoversExactRange(t *testing.T) {
	env := rangeEnvelope(flatShape(60), 1.5, 2.5)
	var lo, hi float64
	for _, b := range env {
		lo += b.Min
		hi += b.Max
	}
	if !almostEqual(lo, 1.5, 1e-9) || !almostEqual(hi, 2.5, 1e-9) {
		t.Errorf("envelope range = [%v, %v], want [1.5, 2.5]", lo, hi)
	}
}

func TestNominalProfileAndEnergy(t *testing.T) {
	a := testAppliance()
	nom := a.NominalProfile()
	if len(nom) != len(a.Envelope) {
		t.Fatalf("profile len = %d", len(nom))
	}
	var sum float64
	for _, v := range nom {
		sum += v
	}
	if !almostEqual(sum, a.NominalEnergy(), 1e-9) {
		t.Errorf("NominalEnergy = %v, profile sum = %v", a.NominalEnergy(), sum)
	}
	if !almostEqual(a.NominalEnergy(), 2.1, 1e-9) {
		t.Errorf("NominalEnergy = %v, want 2.1 (midpoint of 1.2..3)", a.NominalEnergy())
	}
}

func TestRunDuration(t *testing.T) {
	a := testAppliance()
	if got := a.RunDuration(); got != 110*time.Minute {
		t.Errorf("RunDuration = %v, want 110m", got)
	}
}

func TestSignatureAt(t *testing.T) {
	a := testAppliance()
	sig, err := a.SignatureAt(15 * time.Minute)
	if err != nil {
		t.Fatalf("SignatureAt: %v", err)
	}
	// 110 minutes → 8 buckets of 15 min (last partial).
	if len(sig) != 8 {
		t.Errorf("signature buckets = %d, want 8", len(sig))
	}
	var sum float64
	for _, v := range sig {
		sum += v
	}
	if !almostEqual(sum, a.NominalEnergy(), 1e-9) {
		t.Errorf("signature total = %v, want %v", sum, a.NominalEnergy())
	}
	if _, err := a.SignatureAt(90 * time.Second); err == nil {
		t.Error("fractional-minute resolution accepted")
	}
	if _, err := a.SignatureAt(0); err == nil {
		t.Error("zero resolution accepted")
	}
}

func TestSampleRunWithinEnvelope(t *testing.T) {
	a := testAppliance()
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		run := a.SampleRun(rng)
		if len(run) != len(a.Envelope) {
			t.Fatalf("run len = %d", len(run))
		}
		var total float64
		for i, v := range run {
			b := a.Envelope[i]
			if v < b.Min-1e-9 || v > b.Max+1e-9 {
				t.Fatalf("minute %d energy %v outside band [%v, %v]", i, v, b.Min, b.Max)
			}
			total += v
		}
		if total < a.MinRunEnergy-1e-9 || total > a.MaxRunEnergy+1e-9 {
			t.Fatalf("run total %v outside [%v, %v]", total, a.MinRunEnergy, a.MaxRunEnergy)
		}
	}
}

func TestRunWithEnergyClamps(t *testing.T) {
	a := testAppliance()
	low := a.runWithEnergy(0)
	var sum float64
	for _, v := range low {
		sum += v
	}
	if !almostEqual(sum, a.MinRunEnergy, 1e-9) {
		t.Errorf("clamped low run total = %v, want %v", sum, a.MinRunEnergy)
	}
	high := a.runWithEnergy(1000)
	sum = 0
	for _, v := range high {
		sum += v
	}
	if !almostEqual(sum, a.MaxRunEnergy, 1e-9) {
		t.Errorf("clamped high run total = %v, want %v", sum, a.MaxRunEnergy)
	}
}

func TestSampleStartHour(t *testing.T) {
	a := testAppliance()
	a.HourWeights = eveningHours()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		h := a.SampleStartHour(rng)
		if h < 17 || h > 22 {
			t.Fatalf("start hour %d outside weighted block", h)
		}
	}
	// Uniform fallback covers all hours eventually.
	var zero [24]float64
	a.HourWeights = zero
	seen := make(map[int]bool)
	for i := 0; i < 2000; i++ {
		seen[a.SampleStartHour(rng)] = true
	}
	if len(seen) != 24 {
		t.Errorf("uniform fallback hit %d distinct hours, want 24", len(seen))
	}
}

func TestShapedEnvelopeNegativeEntries(t *testing.T) {
	env := ShapedEnvelope([]float64{1, -5, 1}, 2, 0)
	if env[1].Min != 0 || env[1].Max != 0 {
		t.Errorf("negative shape entry band = %+v, want zero", env[1])
	}
	if !almostEqual(env[0].Min+env[2].Min, 2, 1e-9) {
		t.Errorf("shape normalisation wrong: %+v", env)
	}
}

func TestFlatEnvelope(t *testing.T) {
	env := FlatEnvelope(4, 2, 0.5)
	if len(env) != 4 {
		t.Fatalf("len = %d", len(env))
	}
	if !almostEqual(env[0].Min, 0.25, 1e-9) || !almostEqual(env[0].Max, 0.75, 1e-9) {
		t.Errorf("band = %+v", env[0])
	}
}

func TestCategoryString(t *testing.T) {
	cats := []Category{Wet, Cleaning, Vehicle, Kitchen, Cold, Entertainment, Heating, Category(99)}
	want := []string{"wet", "cleaning", "vehicle", "kitchen", "cold", "entertainment", "heating", "unknown"}
	for i, c := range cats {
		if c.String() != want[i] {
			t.Errorf("Category(%d).String() = %q, want %q", int(c), c.String(), want[i])
		}
	}
}

// Property: every sampled run stays within the envelope and the run-energy
// range, for arbitrary seeds.
func TestSampleRunProperty(t *testing.T) {
	a := testAppliance()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		run := a.SampleRun(rng)
		var total float64
		for i, v := range run {
			b := a.Envelope[i]
			if v < b.Min-1e-9 || v > b.Max+1e-9 {
				return false
			}
			total += v
		}
		return total >= a.MinRunEnergy-1e-9 && total <= a.MaxRunEnergy+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
