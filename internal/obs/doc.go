// Package obs is the repository's observability layer: metrics, a metric
// registry with Prometheus-text and JSON exposition, a leveled structured
// logger, and HTTP server middleware — all standard-library only, so every
// serving layer (internal/market, internal/pipeline, cmd/mirabeld,
// cmd/flexextract) can be instrumented without pulling in a dependency.
//
// # Metrics
//
// Three primitive instruments cover the repo's needs:
//
//   - Counter: a monotonically increasing count (requests served, jobs
//     failed). Lock-free; safe for concurrent use.
//   - Gauge: a value that goes up and down (workers busy, offers in a
//     lifecycle state). GaugeFunc and sampled-gauge families compute their
//     value at scrape time, which is how store-level state counts are
//     exported without double bookkeeping.
//   - Histogram: a bucketed distribution with sum and count, rendered in
//     Prometheus's cumulative-bucket convention — the latency instrument.
//
// Labelled variants (CounterVec, HistogramVec) key children by label
// values, e.g. one request counter per (route, method, status class).
//
// # Registry and exposition
//
// A Registry owns a set of named metric families and renders them all:
// WritePrometheus emits the text exposition format scraped from /metrics,
// WriteJSON emits an expvar-style JSON object (the flexextract -stats-json
// output), and Handler serves both over HTTP (JSON when the request asks
// with ?format=json). Output is sorted by family and label so renders are
// deterministic and golden-testable.
//
// # Logging
//
// Logger writes leveled key=value lines (logfmt style):
//
//	ts=2012-06-04T00:00:00Z level=info msg="seed done" offers=412 wall=180ms
//
// With derives a child logger with bound fields; a nil *Logger is a valid
// no-op receiver, so instrumented code never needs to guard its log calls.
//
// # HTTP middleware
//
// NewHTTPMetrics allocates the standard server instruments (request counts
// by route/method/status class, per-route latency histograms, in-flight
// gauge, panic counter) and Middleware wraps an http.Handler to feed them,
// recovering panics into 500 responses so one bad request cannot take down
// the daemon.
package obs
