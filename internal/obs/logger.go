package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Level is a log severity. Records below a logger's minimum level are
// dropped.
type Level int32

// The four severities, in increasing order.
const (
	// LevelDebug is per-request / per-job detail, off by default.
	LevelDebug Level = iota
	// LevelInfo is normal operational messages.
	LevelInfo
	// LevelWarn is something surprising the process survived.
	LevelWarn
	// LevelError is a failure someone should look at.
	LevelError
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return fmt.Sprintf("level(%d)", int32(l))
	}
}

// ParseLevel parses "debug", "info", "warn" or "error".
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return LevelDebug, nil
	case "info":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	default:
		return 0, fmt.Errorf("obs: unknown log level %q (want debug|info|warn|error)", s)
	}
}

// Logger writes leveled key=value (logfmt-style) lines:
//
//	ts=2012-06-04T00:00:00Z level=info msg="seed done" offers=412
//
// A nil *Logger is a valid no-op receiver, so instrumented code can log
// unconditionally. Loggers derived with With share the parent's writer and
// mutex, so lines from the whole family never interleave.
type Logger struct {
	mu    *sync.Mutex
	w     io.Writer
	min   Level
	now   func() time.Time
	bound string // pre-rendered " k=v" pairs from With
}

// NewLogger builds a logger writing records at or above min to w.
func NewLogger(w io.Writer, min Level) *Logger {
	return &Logger{mu: new(sync.Mutex), w: w, min: min, now: time.Now}
}

// WithClock returns a copy of the logger that reads timestamps from now —
// for tests that need deterministic output.
func (l *Logger) WithClock(now func() time.Time) *Logger {
	if l == nil {
		return nil
	}
	c := *l
	c.now = now
	return &c
}

// With returns a child logger with the given key/value pairs bound to
// every record it writes.
func (l *Logger) With(kv ...any) *Logger {
	if l == nil {
		return nil
	}
	c := *l
	c.bound = l.bound + renderPairs(kv)
	return &c
}

// Enabled reports whether records at level would be written.
func (l *Logger) Enabled(level Level) bool { return l != nil && level >= l.min }

// Debug logs at LevelDebug.
func (l *Logger) Debug(msg string, kv ...any) { l.log(LevelDebug, msg, kv) }

// Info logs at LevelInfo.
func (l *Logger) Info(msg string, kv ...any) { l.log(LevelInfo, msg, kv) }

// Warn logs at LevelWarn.
func (l *Logger) Warn(msg string, kv ...any) { l.log(LevelWarn, msg, kv) }

// Error logs at LevelError.
func (l *Logger) Error(msg string, kv ...any) { l.log(LevelError, msg, kv) }

func (l *Logger) log(level Level, msg string, kv []any) {
	if !l.Enabled(level) {
		return
	}
	var b strings.Builder
	b.WriteString("ts=")
	b.WriteString(l.now().UTC().Format(time.RFC3339))
	b.WriteString(" level=")
	b.WriteString(level.String())
	b.WriteString(" msg=")
	b.WriteString(quoteValue(msg))
	b.WriteString(l.bound)
	b.WriteString(renderPairs(kv))
	b.WriteByte('\n')
	l.mu.Lock()
	defer l.mu.Unlock()
	_, _ = io.WriteString(l.w, b.String())
}

// renderPairs renders kv as " k=v k=v"; a dangling key gets the value
// "!MISSING" rather than being dropped.
func renderPairs(kv []any) string {
	if len(kv) == 0 {
		return ""
	}
	var b strings.Builder
	for i := 0; i < len(kv); i += 2 {
		key := fmt.Sprint(kv[i])
		val := "!MISSING"
		if i+1 < len(kv) {
			val = formatValue(kv[i+1])
		}
		b.WriteByte(' ')
		b.WriteString(key)
		b.WriteByte('=')
		b.WriteString(quoteValue(val))
	}
	return b.String()
}

func formatValue(v any) string {
	switch x := v.(type) {
	case error:
		return x.Error()
	case time.Duration:
		return x.String()
	default:
		return fmt.Sprint(v)
	}
}

// quoteValue quotes a value only when logfmt needs it: spaces, quotes or
// '=' inside, or an empty string.
func quoteValue(s string) string {
	if s == "" || strings.ContainsAny(s, " \t\n\"=") {
		return fmt.Sprintf("%q", s)
	}
	return s
}
