package obs

import (
	"math"
	"sync"
	"testing"
)

func TestCounterAndGaugeConcurrent(t *testing.T) {
	reg := NewRegistry()
	c := reg.NewCounter("c_total", "test counter")
	g := reg.NewGauge("g", "test gauge")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				g.Inc()
				g.Dec()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %d, want 8000", c.Value())
	}
	if g.Value() != 0 {
		t.Errorf("gauge = %d, want 0", g.Value())
	}
	g.Set(-3)
	g.Add(5)
	if g.Value() != 2 {
		t.Errorf("gauge = %d, want 2", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := newHistogram([]float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.01, 0.05, 0.5, 2} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// 0.005 and 0.01 land in le=0.01 (bounds are inclusive), 0.05 in
	// le=0.1, 0.5 in le=1, 2 in +Inf.
	want := []uint64{2, 1, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, s.Counts[i], w)
		}
	}
	if s.Count != 5 {
		t.Errorf("count = %d, want 5", s.Count)
	}
	if math.Abs(s.Sum-2.565) > 1e-9 {
		t.Errorf("sum = %v, want 2.565", s.Sum)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := newHistogram(nil)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != 4000 {
		t.Errorf("count = %d, want 4000", s.Count)
	}
	if math.Abs(s.Sum-4.0) > 1e-6 {
		t.Errorf("sum = %v, want 4.0", s.Sum)
	}
}

func TestVecChildrenKeyedByLabels(t *testing.T) {
	reg := NewRegistry()
	v := reg.NewCounterVec("req_total", "test", "route", "method")
	v.With("/offers", "GET").Add(2)
	v.With("/offers", "POST").Inc()
	if got := v.With("/offers", "GET").Value(); got != 2 {
		t.Errorf("GET child = %d, want 2", got)
	}
	if got := v.With("/offers", "POST").Value(); got != 1 {
		t.Errorf("POST child = %d, want 1", got)
	}
	// Same values -> same child.
	if v.With("/offers", "GET") != v.With("/offers", "GET") {
		t.Error("With not stable for identical labels")
	}
}

func TestVecWrongArityPanics(t *testing.T) {
	reg := NewRegistry()
	v := reg.NewCounterVec("x_total", "test", "a", "b")
	defer func() {
		if recover() == nil {
			t.Error("wrong label arity did not panic")
		}
	}()
	v.With("only-one")
}

func TestDuplicateFamilyPanics(t *testing.T) {
	reg := NewRegistry()
	reg.NewCounter("dup_total", "first")
	defer func() {
		if recover() == nil {
			t.Error("duplicate family name did not panic")
		}
	}()
	reg.NewGauge("dup_total", "second")
}

func TestHistogramQuantile(t *testing.T) {
	reg := NewRegistry()
	h := reg.NewHistogram("q_seconds", "test", []float64{1, 2, 4, 8})
	// 10 observations spread one per unit across (0,1] and (1,2], then a
	// tail: buckets get 4, 4, 1, 1 observations and +Inf gets 0.
	for i := 0; i < 4; i++ {
		h.Observe(0.5)
		h.Observe(1.5)
	}
	h.Observe(3)
	h.Observe(7)
	s := h.Snapshot()

	if got := s.Quantile(0.5); got != 1.25 {
		// rank 5 lands 1 observation into the (1,2] bucket of 4: 1 + 1/4.
		t.Errorf("p50 = %v, want 1.25", got)
	}
	if got := s.Quantile(0); got != 0 {
		t.Errorf("p0 = %v, want 0", got)
	}
	if got := s.Quantile(1); got != 8 {
		t.Errorf("p100 = %v, want 8", got)
	}
	if got := s.Quantile(0.95); got < 4 || got > 8 {
		t.Errorf("p95 = %v, want within (4,8]", got)
	}

	// Observations beyond the last bound clamp to it.
	h.Observe(100)
	if got := h.Snapshot().Quantile(1); got != 8 {
		t.Errorf("p100 with +Inf tail = %v, want clamp to 8", got)
	}

	// Empty histogram: NaN.
	empty := reg.NewHistogram("empty_seconds", "test", []float64{1}).Snapshot()
	if got := empty.Quantile(0.5); !math.IsNaN(got) {
		t.Errorf("empty quantile = %v, want NaN", got)
	}
}
