package obs

import (
	"strings"
	"testing"
	"time"
)

var logT0 = time.Date(2012, 6, 4, 0, 0, 0, 0, time.UTC)

func newTestLogger(min Level) (*Logger, *strings.Builder) {
	var buf strings.Builder
	l := NewLogger(&buf, min).WithClock(func() time.Time { return logT0 })
	return l, &buf
}

func TestLoggerFormat(t *testing.T) {
	l, buf := newTestLogger(LevelInfo)
	l.Info("listening", "addr", ":7654")
	want := "ts=2012-06-04T00:00:00Z level=info msg=listening addr=:7654\n"
	if buf.String() != want {
		t.Errorf("line = %q, want %q", buf.String(), want)
	}
}

func TestLoggerQuoting(t *testing.T) {
	l, buf := newTestLogger(LevelInfo)
	l.Info("seed done", "path", "a b.csv", "empty", "", "eq", "k=v")
	got := buf.String()
	for _, want := range []string{`msg="seed done"`, `path="a b.csv"`, `empty=""`, `eq="k=v"`} {
		if !strings.Contains(got, want) {
			t.Errorf("line %q missing %q", got, want)
		}
	}
}

func TestLoggerLevelFilter(t *testing.T) {
	l, buf := newTestLogger(LevelWarn)
	l.Debug("nope")
	l.Info("nope")
	l.Warn("yes")
	l.Error("also")
	got := buf.String()
	if strings.Contains(got, "nope") {
		t.Errorf("below-min records written: %q", got)
	}
	if !strings.Contains(got, "level=warn msg=yes") || !strings.Contains(got, "level=error msg=also") {
		t.Errorf("expected records missing: %q", got)
	}
}

func TestLoggerWith(t *testing.T) {
	l, buf := newTestLogger(LevelInfo)
	child := l.With("component", "sweeper")
	child.Info("tick", "expired", 3)
	if !strings.Contains(buf.String(), "component=sweeper expired=3") {
		t.Errorf("bound fields missing: %q", buf.String())
	}
	buf.Reset()
	l.Info("plain")
	if strings.Contains(buf.String(), "component") {
		t.Errorf("parent logger inherited child fields: %q", buf.String())
	}
}

func TestLoggerDanglingKey(t *testing.T) {
	l, buf := newTestLogger(LevelInfo)
	l.Info("m", "orphan")
	if !strings.Contains(buf.String(), "orphan=!MISSING") {
		t.Errorf("dangling key mishandled: %q", buf.String())
	}
}

func TestNilLoggerIsSafe(t *testing.T) {
	var l *Logger
	l.Info("into the void", "k", "v")
	l.With("a", 1).Error("still fine")
	if l.Enabled(LevelError) {
		t.Error("nil logger claims to be enabled")
	}
}

func TestParseLevel(t *testing.T) {
	for s, want := range map[string]Level{"debug": LevelDebug, "info": LevelInfo, "warn": LevelWarn, "warning": LevelWarn, "error": LevelError} {
		got, err := ParseLevel(s)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel accepted garbage")
	}
}
