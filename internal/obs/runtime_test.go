package obs

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

// TestRegisterRuntimeMetrics: every runtime_* family renders with a
// plausible live value.
func TestRegisterRuntimeMetrics(t *testing.T) {
	reg := NewRegistry()
	RegisterRuntimeMetrics(reg)

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, family := range []string{
		"runtime_goroutines",
		"runtime_heap_alloc_bytes",
		"runtime_heap_inuse_bytes",
		"runtime_heap_sys_bytes",
		"runtime_heap_objects",
		"runtime_gc_cycles_total",
		"runtime_gc_pause_ns_total",
	} {
		if !strings.Contains(text, "\n"+family+" ") {
			t.Errorf("exposition missing %s sample:\n%s", family, text)
		}
	}
	if strings.Contains(text, "runtime_goroutines 0\n") {
		t.Error("runtime_goroutines reports 0; a running test has goroutines")
	}
	if strings.Contains(text, "runtime_heap_alloc_bytes 0\n") {
		t.Error("runtime_heap_alloc_bytes reports 0")
	}
}

// TestRuntimeSamplerCaches: scrapes inside the sample interval share
// one MemStats read; a scrape past it refreshes.
func TestRuntimeSamplerCaches(t *testing.T) {
	now := time.Unix(0, 0)
	s := &runtimeSampler{read: func() time.Time { return now }}

	first := s.snapshot()
	// Allocate enough that a fresh read would differ, then force GC
	// bookkeeping so Mallocs moves.
	sink := make([][]byte, 64)
	for i := range sink {
		sink[i] = make([]byte, 64<<10)
	}
	runtime.GC()
	_ = sink

	now = now.Add(memSampleInterval / 2)
	if again := s.snapshot(); again.Mallocs != first.Mallocs {
		t.Error("snapshot refreshed inside the sample interval")
	}
	now = now.Add(memSampleInterval)
	if again := s.snapshot(); again.Mallocs == first.Mallocs {
		t.Error("snapshot not refreshed after the sample interval elapsed")
	}
}
