package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenRegistry builds a registry exercising every family kind with
// deterministic values.
func goldenRegistry() *Registry {
	reg := NewRegistry()
	c := reg.NewCounter("jobs_total", "Jobs processed.")
	c.Add(42)
	cv := reg.NewCounterVec("requests_total", "Requests by route and status.", "route", "status")
	cv.With("/offers", "2xx").Add(7)
	cv.With("/offers", "4xx").Inc()
	cv.With("/stats", "2xx").Add(3)
	g := reg.NewGauge("workers_busy", "Busy workers.")
	g.Set(3)
	reg.NewGaugeFunc("flexible_energy_kwh", "Flexible energy on offer.", func() float64 { return 12.5 })
	reg.NewSampledGauge("offers_current", "Offers by lifecycle state.", func() []Sample {
		return []Sample{
			{Labels: []Label{{Name: "state", Value: "offered"}}, Value: 5},
			{Labels: []Label{{Name: "state", Value: "accepted"}}, Value: 2},
		}
	})
	h := reg.NewHistogram("extract_seconds", "Extraction durations.", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.02, 0.02, 0.5, 3} {
		h.Observe(v)
	}
	hv := reg.NewHistogramVec("request_seconds", "Request latency by route.", []float64{0.001, 0.01}, "route")
	hv.With("/offers").Observe(0.0005)
	hv.With("/offers").Observe(0.005)
	hv.With("/stats").Observe(0.02)
	return reg
}

// TestWritePrometheusGolden pins the full text exposition — HELP/TYPE
// lines, label rendering, cumulative histogram buckets — against
// testdata/metrics.golden. Refresh with `go test ./internal/obs -update`.
func TestWritePrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "metrics.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden: %v (run with -update to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("prometheus exposition drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

func TestWritePrometheusDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	reg := goldenRegistry()
	if err := reg.WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("two renders of the same registry differ")
	}
}

func TestWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var out map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	var jobs float64
	if err := json.Unmarshal(out["jobs_total"], &jobs); err != nil || jobs != 42 {
		t.Errorf("jobs_total = %s (%v)", out["jobs_total"], err)
	}
	var hist struct {
		Count   uint64            `json:"count"`
		Sum     float64           `json:"sum"`
		Buckets map[string]uint64 `json:"buckets"`
	}
	if err := json.Unmarshal(out["extract_seconds"], &hist); err != nil {
		t.Fatalf("extract_seconds: %v", err)
	}
	if hist.Count != 5 || hist.Buckets["+Inf"] != 5 || hist.Buckets["0.1"] != 3 {
		t.Errorf("histogram JSON = %+v", hist)
	}
	var states []struct {
		Labels map[string]string `json:"labels"`
		Value  float64           `json:"value"`
	}
	if err := json.Unmarshal(out["offers_current"], &states); err != nil || len(states) != 2 {
		t.Fatalf("offers_current = %s (%v)", out["offers_current"], err)
	}
}

func TestRegistryHandler(t *testing.T) {
	h := goldenRegistry().Handler()

	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if rr.Code != 200 || !strings.Contains(rr.Body.String(), "# TYPE jobs_total counter") {
		t.Errorf("text scrape: code=%d body=%q", rr.Code, rr.Body.String())
	}
	if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}

	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/metrics?format=json", nil))
	if rr.Code != 200 || rr.Header().Get("Content-Type") != "application/json" {
		t.Errorf("json scrape: code=%d ct=%q", rr.Code, rr.Header().Get("Content-Type"))
	}

	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("POST", "/metrics", nil))
	if rr.Code != 405 {
		t.Errorf("POST /metrics = %d, want 405", rr.Code)
	}
}
