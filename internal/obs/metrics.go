package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing counter. The zero value is ready to
// use; all methods are safe for concurrent use and lock-free.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n to the counter.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value reports the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an integer value that can go up and down (queue depths, busy
// workers, current state counts). The zero value is ready to use.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (which may be negative) to the gauge.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value reports the current gauge value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// atomicFloat is a float64 updated with compare-and-swap on its bit pattern.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) load() float64 { return math.Float64frombits(f.bits.Load()) }

// DefBuckets is the default latency bucket layout, in seconds: sub-
// millisecond through ten seconds, the span an in-memory store and a batch
// extraction pipeline actually produce.
var DefBuckets = []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// Histogram is a fixed-bucket distribution with a running sum and count,
// rendered in Prometheus's cumulative le convention. Observations are
// lock-free. Create histograms through a Registry (NewHistogram) so they
// are part of an exposition.
type Histogram struct {
	bounds []float64       // ascending upper bounds; +Inf is implicit
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	sum    atomicFloat
	count  atomic.Uint64
}

func newHistogram(buckets []float64) *Histogram {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	bounds := append([]float64(nil), buckets...)
	sort.Float64s(bounds)
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one value (for latency histograms: seconds).
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.sum.add(v)
	h.count.Add(1)
}

// HistogramSnapshot is a point-in-time copy of a histogram's state.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds, ascending, excluding +Inf.
	Bounds []float64
	// Counts holds per-bucket (non-cumulative) observation counts;
	// Counts[len(Bounds)] is the +Inf bucket.
	Counts []uint64
	// Sum is the sum of all observed values.
	Sum float64
	// Count is the total number of observations.
	Count uint64
}

// Snapshot copies the histogram's current state. Concurrent Observe calls
// may make the copy slightly inconsistent (sum vs counts), which is the
// standard scrape-time tolerance.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]uint64, len(h.counts)),
		Sum:    h.sum.load(),
		Count:  h.count.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Quantile estimates the q-quantile (q in [0,1]) of the observed
// distribution by linear interpolation inside the bucket the quantile
// falls in — the same estimate Prometheus's histogram_quantile computes.
// Observations in the +Inf bucket clamp to the highest finite bound, and
// an empty histogram reports NaN.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, c := range s.Counts {
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		if i >= len(s.Bounds) {
			// +Inf bucket: no upper bound to interpolate toward.
			if len(s.Bounds) == 0 {
				return math.NaN()
			}
			return s.Bounds[len(s.Bounds)-1]
		}
		lower := 0.0
		if i > 0 {
			lower = s.Bounds[i-1]
		}
		upper := s.Bounds[i]
		// Position of the rank within this bucket's count.
		frac := (rank - (cum - float64(c))) / float64(c)
		return lower + (upper-lower)*frac
	}
	if len(s.Bounds) == 0 {
		return math.NaN()
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Label is one name/value pair attached to a metric child.
type Label struct {
	// Name is the label name (e.g. "route").
	Name string
	// Value is the label value (e.g. "/offers").
	Value string
}

// labelString renders labels as `{k="v",...}`, or "" when empty.
func labelString(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Name, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

func zipLabels(names, values []string) []Label {
	labels := make([]Label, len(names))
	for i, n := range names {
		labels[i] = Label{Name: n, Value: values[i]}
	}
	return labels
}

// CounterVec is a family of Counters keyed by label values, e.g. one
// request counter per (route, method, status).
type CounterVec struct {
	names    []string
	mu       sync.RWMutex
	children map[string]*vecChild[*Counter]
}

type vecChild[M any] struct {
	labels []Label
	metric M
}

// With returns (creating on first use) the child counter for the given
// label values, which must match the vec's label names in number and order.
func (v *CounterVec) With(values ...string) *Counter {
	if len(values) != len(v.names) {
		panic(fmt.Sprintf("obs: CounterVec got %d label values, want %d", len(values), len(v.names)))
	}
	key := strings.Join(values, "\xff")
	v.mu.RLock()
	c, ok := v.children[key]
	v.mu.RUnlock()
	if ok {
		return c.metric
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok := v.children[key]; ok {
		return c.metric
	}
	child := &vecChild[*Counter]{labels: zipLabels(v.names, values), metric: new(Counter)}
	v.children[key] = child
	return child.metric
}

// HistogramVec is a family of Histograms keyed by label values, e.g. one
// latency histogram per route.
type HistogramVec struct {
	names    []string
	buckets  []float64
	mu       sync.RWMutex
	children map[string]*vecChild[*Histogram]
}

// With returns (creating on first use) the child histogram for the given
// label values, which must match the vec's label names in number and order.
func (v *HistogramVec) With(values ...string) *Histogram {
	if len(values) != len(v.names) {
		panic(fmt.Sprintf("obs: HistogramVec got %d label values, want %d", len(values), len(v.names)))
	}
	key := strings.Join(values, "\xff")
	v.mu.RLock()
	c, ok := v.children[key]
	v.mu.RUnlock()
	if ok {
		return c.metric
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok := v.children[key]; ok {
		return c.metric
	}
	child := &vecChild[*Histogram]{labels: zipLabels(v.names, values), metric: newHistogram(v.buckets)}
	v.children[key] = child
	return child.metric
}

// sortedChildren returns the vec children ordered by rendered label string,
// so expositions are deterministic.
func sortedChildren[M any](mu *sync.RWMutex, children map[string]*vecChild[M]) []*vecChild[M] {
	mu.RLock()
	out := make([]*vecChild[M], 0, len(children))
	for _, c := range children {
		out = append(out, c)
	}
	mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		return labelString(out[i].labels) < labelString(out[j].labels)
	})
	return out
}
