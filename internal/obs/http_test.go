package obs

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestMiddlewareCountsAndStatus(t *testing.T) {
	reg := NewRegistry()
	m := NewHTTPMetrics(reg, "test")
	mux := http.NewServeMux()
	mux.HandleFunc("/ok", func(w http.ResponseWriter, r *http.Request) { w.Write([]byte("ok")) })
	mux.HandleFunc("/teapot", func(w http.ResponseWriter, r *http.Request) { w.WriteHeader(http.StatusTeapot) })
	h := Middleware(mux, m, func(r *http.Request) string { return r.URL.Path }, nil)

	for _, path := range []string{"/ok", "/ok", "/teapot"} {
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest("GET", path, nil))
	}
	if got := m.Requests.With("/ok", "GET", "2xx").Value(); got != 2 {
		t.Errorf("2xx count = %d, want 2", got)
	}
	if got := m.Requests.With("/teapot", "GET", "4xx").Value(); got != 1 {
		t.Errorf("4xx count = %d, want 1", got)
	}
	if got := m.Latency.With("/ok").Snapshot().Count; got != 2 {
		t.Errorf("latency observations = %d, want 2", got)
	}
	if got := m.InFlight.Value(); got != 0 {
		t.Errorf("in-flight after requests = %d, want 0", got)
	}
}

func TestMiddlewareRecoversPanics(t *testing.T) {
	reg := NewRegistry()
	m := NewHTTPMetrics(reg, "test")
	var logbuf strings.Builder
	logger := NewLogger(&logbuf, LevelError)
	boom := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { panic("kaboom") })
	h := Middleware(boom, m, nil, logger)

	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/boom", nil)) // must not propagate
	if rr.Code != http.StatusInternalServerError {
		t.Errorf("panicking handler status = %d, want 500", rr.Code)
	}
	if m.Panics.Value() != 1 {
		t.Errorf("panics counter = %d, want 1", m.Panics.Value())
	}
	if got := m.Requests.With("/boom", "GET", "5xx").Value(); got != 1 {
		t.Errorf("5xx count = %d, want 1", got)
	}
	if !strings.Contains(logbuf.String(), "kaboom") {
		t.Errorf("panic not logged: %q", logbuf.String())
	}
}

func TestMiddlewareNilMetricsAndLogger(t *testing.T) {
	h := Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNoContent)
	}), nil, nil, nil)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/x", nil))
	if rr.Code != http.StatusNoContent {
		t.Errorf("status = %d, want 204", rr.Code)
	}
}
