package obs

import (
	"net/http"
	"time"
)

// HTTPMetrics bundles the standard instruments for one HTTP server:
// request counts by (route, method, status class), per-route latency
// histograms, an in-flight gauge, and a recovered-panic counter.
type HTTPMetrics struct {
	// Requests counts finished requests, labelled route/method/status
	// ("2xx", "4xx", ...).
	Requests *CounterVec
	// Latency observes per-route request durations in seconds.
	Latency *HistogramVec
	// InFlight is the number of requests currently being served.
	InFlight *Gauge
	// Panics counts handler panics recovered by the middleware.
	Panics *Counter
}

// NewHTTPMetrics registers the standard HTTP server instruments under
// <prefix>_http_*.
func NewHTTPMetrics(r *Registry, prefix string) *HTTPMetrics {
	return &HTTPMetrics{
		Requests: r.NewCounterVec(prefix+"_http_requests_total", "HTTP requests served, by route, method and status class.", "route", "method", "status"),
		Latency:  r.NewHistogramVec(prefix+"_http_request_seconds", "HTTP request latency in seconds, by route.", nil, "route"),
		InFlight: r.NewGauge(prefix+"_http_in_flight", "HTTP requests currently being served."),
		Panics:   r.NewCounter(prefix+"_http_panics_total", "Handler panics recovered by the middleware."),
	}
}

// statusRecorder captures the status code a handler writes.
type statusRecorder struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (r *statusRecorder) WriteHeader(status int) {
	if !r.wrote {
		r.status, r.wrote = status, true
	}
	r.ResponseWriter.WriteHeader(status)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if !r.wrote {
		r.status, r.wrote = http.StatusOK, true
	}
	return r.ResponseWriter.Write(b)
}

// methodLabel normalises an HTTP method into a bounded label set: the
// standard methods pass through, anything else — clients may send an
// arbitrary method string — collapses to "other", so the request-counter
// family cannot be grown one child per attacker-chosen method.
func methodLabel(method string) string {
	switch method {
	case http.MethodGet:
		return http.MethodGet
	case http.MethodHead:
		return http.MethodHead
	case http.MethodPost:
		return http.MethodPost
	case http.MethodPut:
		return http.MethodPut
	case http.MethodPatch:
		return http.MethodPatch
	case http.MethodDelete:
		return http.MethodDelete
	case http.MethodOptions:
		return http.MethodOptions
	default:
		return "other"
	}
}

func statusClass(status int) string {
	switch {
	case status >= 500:
		return "5xx"
	case status >= 400:
		return "4xx"
	case status >= 300:
		return "3xx"
	default:
		return "2xx"
	}
}

// Middleware wraps next with instrumentation: every request is counted and
// timed under the route label routeOf derives from it, requests in flight
// are gauged, and handler panics are recovered into a 500 response (and
// counted) so one bad request cannot take the server down. Each request is
// additionally logged at debug level; recovered panics log at error level.
// Both m and logger may be nil to disable that half.
func Middleware(next http.Handler, m *HTTPMetrics, routeOf func(*http.Request) string, logger *Logger) http.Handler {
	if routeOf == nil {
		routeOf = func(r *http.Request) string { return r.URL.Path }
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		route := routeOf(r)
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		if m != nil {
			m.InFlight.Inc()
		}
		defer func() {
			elapsed := time.Since(start)
			if p := recover(); p != nil {
				if m != nil {
					m.Panics.Inc()
				}
				logger.Error("handler panic", "route", route, "method", r.Method, "panic", p)
				if !rec.wrote {
					rec.WriteHeader(http.StatusInternalServerError)
				}
			}
			if m != nil {
				m.InFlight.Dec()
				//lint:ignore labelcard route is bounded by contract: routeOf maps requests onto the server's fixed route inventory (market.Routes, docs/API.md)
				m.Requests.With(route, methodLabel(r.Method), statusClass(rec.status)).Inc()
				//lint:ignore labelcard route is bounded by contract: routeOf maps requests onto the server's fixed route inventory (market.Routes, docs/API.md)
				m.Latency.With(route).Observe(elapsed.Seconds())
			}
			logger.Debug("request", "route", route, "method", r.Method, "path", r.URL.Path, "status", rec.status, "dur", elapsed)
		}()
		next.ServeHTTP(rec, r)
	})
}
