package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
)

// Sample is one scrape-time value of a sampled gauge family (see
// Registry.NewSampledGauge): a labelled float computed when the registry
// renders.
type Sample struct {
	// Labels identify the sample within its family; may be empty.
	Labels []Label
	// Value is the sample's value at collection time.
	Value float64
}

// family is one named metric family and knows how to render itself.
type family struct {
	name string
	help string
	typ  string // "counter" | "gauge" | "histogram"

	// Exactly one of these is set.
	counter      *Counter
	counterFunc  func() uint64
	counterVec   *CounterVec
	gauge        *Gauge
	gaugeFunc    func() float64
	sampledGauge func() []Sample
	histogram    *Histogram
	histogramVec *HistogramVec
}

// Registry owns a set of named metric families and renders them as
// Prometheus text exposition or JSON. Metrics are created through the
// New* methods so every instrument is automatically part of the
// exposition; registering the same family name twice panics (it is a
// programming error, like a duplicate flag).
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func (r *Registry) register(f *family) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[f.name]; dup {
		panic(fmt.Sprintf("obs: duplicate metric family %q", f.name))
	}
	r.families[f.name] = f
}

// NewCounter registers and returns a counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := new(Counter)
	r.register(&family{name: name, help: help, typ: "counter", counter: c})
	return c
}

// NewCounterFunc registers a counter whose value is read from fn at render
// time — for monotonic totals someone else already counts (e.g. a WAL's
// append statistics), mirroring NewGaugeFunc for counters.
func (r *Registry) NewCounterFunc(name, help string, fn func() uint64) {
	r.register(&family{name: name, help: help, typ: "counter", counterFunc: fn})
}

// NewCounterVec registers and returns a labelled counter family.
func (r *Registry) NewCounterVec(name, help string, labelNames ...string) *CounterVec {
	v := &CounterVec{names: labelNames, children: make(map[string]*vecChild[*Counter])}
	r.register(&family{name: name, help: help, typ: "counter", counterVec: v})
	return v
}

// NewGauge registers and returns a gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := new(Gauge)
	r.register(&family{name: name, help: help, typ: "gauge", gauge: g})
	return g
}

// NewGaugeFunc registers a gauge whose value is computed by fn at render
// time — the zero-bookkeeping way to export state someone else owns.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64) {
	r.register(&family{name: name, help: help, typ: "gauge", gaugeFunc: fn})
}

// NewSampledGauge registers a gauge family whose labelled samples are
// computed by collect at render time, e.g. one sample per lifecycle state
// from a single store snapshot.
func (r *Registry) NewSampledGauge(name, help string, collect func() []Sample) {
	r.register(&family{name: name, help: help, typ: "gauge", sampledGauge: collect})
}

// NewHistogram registers and returns a histogram with the given bucket
// upper bounds (DefBuckets when nil).
func (r *Registry) NewHistogram(name, help string, buckets []float64) *Histogram {
	h := newHistogram(buckets)
	r.register(&family{name: name, help: help, typ: "histogram", histogram: h})
	return h
}

// NewHistogramVec registers and returns a labelled histogram family with
// the given bucket upper bounds (DefBuckets when nil).
func (r *Registry) NewHistogramVec(name, help string, buckets []float64, labelNames ...string) *HistogramVec {
	v := &HistogramVec{names: labelNames, buckets: buckets, children: make(map[string]*vecChild[*Histogram])}
	r.register(&family{name: name, help: help, typ: "histogram", histogramVec: v})
	return v
}

// sortedFamilies snapshots the family list ordered by name.
func (r *Registry) sortedFamilies() []*family {
	r.mu.Lock()
	out := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		out = append(out, f)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WritePrometheus renders every family in the Prometheus text exposition
// format (version 0.0.4), sorted by family name and label set so output is
// deterministic.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.sortedFamilies() {
		fmt.Fprintf(bw, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.typ)
		switch {
		case f.counter != nil:
			fmt.Fprintf(bw, "%s %d\n", f.name, f.counter.Value())
		case f.counterFunc != nil:
			fmt.Fprintf(bw, "%s %d\n", f.name, f.counterFunc())
		case f.counterVec != nil:
			for _, c := range sortedChildren(&f.counterVec.mu, f.counterVec.children) {
				fmt.Fprintf(bw, "%s%s %d\n", f.name, labelString(c.labels), c.metric.Value())
			}
		case f.gauge != nil:
			fmt.Fprintf(bw, "%s %d\n", f.name, f.gauge.Value())
		case f.gaugeFunc != nil:
			fmt.Fprintf(bw, "%s %s\n", f.name, formatFloat(f.gaugeFunc()))
		case f.sampledGauge != nil:
			for _, s := range sortedSamples(f.sampledGauge()) {
				fmt.Fprintf(bw, "%s%s %s\n", f.name, labelString(s.Labels), formatFloat(s.Value))
			}
		case f.histogram != nil:
			writePromHistogram(bw, f.name, nil, f.histogram.Snapshot())
		case f.histogramVec != nil:
			for _, c := range sortedChildren(&f.histogramVec.mu, f.histogramVec.children) {
				writePromHistogram(bw, f.name, c.labels, c.metric.Snapshot())
			}
		}
	}
	return bw.Flush()
}

func sortedSamples(samples []Sample) []Sample {
	sort.Slice(samples, func(i, j int) bool {
		return labelString(samples[i].Labels) < labelString(samples[j].Labels)
	})
	return samples
}

// writePromHistogram writes one histogram child in the cumulative-bucket
// convention: le-labelled buckets, then _sum and _count.
func writePromHistogram(w io.Writer, name string, labels []Label, s HistogramSnapshot) {
	cum := uint64(0)
	for i, bound := range s.Bounds {
		cum += s.Counts[i]
		le := append(append([]Label(nil), labels...), Label{Name: "le", Value: formatFloat(bound)})
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, labelString(le), cum)
	}
	cum += s.Counts[len(s.Bounds)]
	inf := append(append([]Label(nil), labels...), Label{Name: "le", Value: "+Inf"})
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, labelString(inf), cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, labelString(labels), formatFloat(s.Sum))
	fmt.Fprintf(w, "%s_count%s %d\n", name, labelString(labels), s.Count)
}

// jsonHistogram is the JSON shape of one histogram child.
type jsonHistogram struct {
	Count   uint64            `json:"count"`
	Sum     float64           `json:"sum"`
	Buckets map[string]uint64 `json:"buckets"` // upper bound -> cumulative count
	Labels  map[string]string `json:"labels,omitempty"`
}

// jsonLabelled is the JSON shape of one labelled scalar sample.
type jsonLabelled struct {
	Labels map[string]string `json:"labels"`
	Value  float64           `json:"value"`
}

func labelMap(labels []Label) map[string]string {
	if len(labels) == 0 {
		return nil
	}
	m := make(map[string]string, len(labels))
	for _, l := range labels {
		m[l.Name] = l.Value
	}
	return m
}

func jsonHistogramValue(labels []Label, s HistogramSnapshot) jsonHistogram {
	h := jsonHistogram{Count: s.Count, Sum: s.Sum, Buckets: make(map[string]uint64, len(s.Bounds)+1), Labels: labelMap(labels)}
	cum := uint64(0)
	for i, bound := range s.Bounds {
		cum += s.Counts[i]
		h.Buckets[formatFloat(bound)] = cum
	}
	h.Buckets["+Inf"] = cum + s.Counts[len(s.Bounds)]
	return h
}

// WriteJSON renders every family as one JSON object keyed by family name —
// the expvar-style exposition behind /metrics?format=json and flexextract's
// -stats-json. Scalars render as numbers, labelled families as arrays of
// {labels, value}, histograms as {count, sum, buckets}.
func (r *Registry) WriteJSON(w io.Writer) error {
	out := make(map[string]any)
	for _, f := range r.sortedFamilies() {
		switch {
		case f.counter != nil:
			out[f.name] = f.counter.Value()
		case f.counterFunc != nil:
			out[f.name] = f.counterFunc()
		case f.counterVec != nil:
			var vals []jsonLabelled
			for _, c := range sortedChildren(&f.counterVec.mu, f.counterVec.children) {
				vals = append(vals, jsonLabelled{Labels: labelMap(c.labels), Value: float64(c.metric.Value())})
			}
			out[f.name] = vals
		case f.gauge != nil:
			out[f.name] = f.gauge.Value()
		case f.gaugeFunc != nil:
			out[f.name] = f.gaugeFunc()
		case f.sampledGauge != nil:
			var vals []jsonLabelled
			for _, s := range sortedSamples(f.sampledGauge()) {
				vals = append(vals, jsonLabelled{Labels: labelMap(s.Labels), Value: s.Value})
			}
			out[f.name] = vals
		case f.histogram != nil:
			out[f.name] = jsonHistogramValue(nil, f.histogram.Snapshot())
		case f.histogramVec != nil:
			var vals []jsonHistogram
			for _, c := range sortedChildren(&f.histogramVec.mu, f.histogramVec.children) {
				vals = append(vals, jsonHistogramValue(c.labels, c.metric.Snapshot()))
			}
			out[f.name] = vals
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// Handler serves the registry over HTTP: Prometheus text by default, JSON
// when the request carries ?format=json. Non-GET methods get 405.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			w.WriteHeader(http.StatusMethodNotAllowed)
			return
		}
		if req.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			_ = r.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
