package obs

import (
	"runtime"
	"sync"
	"time"
)

// memSampleInterval bounds how often a metrics scrape re-reads the Go
// runtime's memory statistics: runtime.ReadMemStats briefly
// stops the world, so scrapes arriving faster than this share one
// snapshot instead of each paying that cost.
const memSampleInterval = 250 * time.Millisecond

// runtimeSampler caches one MemStats snapshot across the registered
// callbacks, refreshing it at most once per memSampleInterval.
type runtimeSampler struct {
	mu   sync.Mutex
	at   time.Time        // guarded by mu: when mem was last read
	mem  runtime.MemStats // guarded by mu
	read func() time.Time // test seam; time.Now in production
}

// snapshot returns a copy of the cached MemStats, refreshing it when
// the cache has gone stale.
func (s *runtimeSampler) snapshot() runtime.MemStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	if now := s.read(); s.at.IsZero() || now.Sub(s.at) >= memSampleInterval {
		runtime.ReadMemStats(&s.mem)
		s.at = now
	}
	return s.mem
}

// RegisterRuntimeMetrics registers the daemon's runtime_* self-metrics:
// goroutine count, heap occupancy and garbage-collection totals. These
// are the signals an operator watches during overload — a goroutine
// leak under queued load, heap growth from unbounded buffering, GC
// pressure from churn — exported from the same registry as the
// admission and store families so one scrape correlates them all.
func RegisterRuntimeMetrics(reg *Registry) {
	s := &runtimeSampler{read: time.Now}
	reg.NewGaugeFunc("runtime_goroutines", "Live goroutines.", func() float64 {
		return float64(runtime.NumGoroutine())
	})
	reg.NewGaugeFunc("runtime_heap_alloc_bytes", "Bytes of allocated heap objects.", func() float64 {
		return float64(s.snapshot().HeapAlloc)
	})
	reg.NewGaugeFunc("runtime_heap_inuse_bytes", "Bytes in in-use heap spans.", func() float64 {
		return float64(s.snapshot().HeapInuse)
	})
	reg.NewGaugeFunc("runtime_heap_sys_bytes", "Bytes of heap memory obtained from the OS.", func() float64 {
		return float64(s.snapshot().HeapSys)
	})
	reg.NewGaugeFunc("runtime_heap_objects", "Live heap objects.", func() float64 {
		return float64(s.snapshot().HeapObjects)
	})
	reg.NewCounterFunc("runtime_gc_cycles_total", "Completed garbage-collection cycles.", func() uint64 {
		return uint64(s.snapshot().NumGC)
	})
	reg.NewCounterFunc("runtime_gc_pause_ns_total", "Cumulative nanoseconds spent in stop-the-world garbage-collection pauses.", func() uint64 {
		return s.snapshot().PauseTotalNs
	})
}
