package core

import (
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/timeseries"
)

var t0 = time.Date(2012, 6, 4, 0, 0, 0, 0, time.UTC) // a Monday

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

// flatDay builds `days` days of 15-minute intervals at the given constant
// energy per interval.
func flatDay(days int, perInterval float64) *timeseries.Series {
	vals := make([]float64, days*96)
	for i := range vals {
		vals[i] = perInterval
	}
	return timeseries.MustNew(t0, 15*time.Minute, vals)
}

func TestDefaultParamsValid(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatalf("DefaultParams invalid: %v", err)
	}
}

func TestParamsValidateRejections(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Params)
	}{
		{"flex pct zero", func(p *Params) { p.FlexPercentage = 0 }},
		{"flex pct one", func(p *Params) { p.FlexPercentage = 1 }},
		{"slice duration zero", func(p *Params) { p.SliceDuration = 0 }},
		{"slice duration non-dividing", func(p *Params) { p.SliceDuration = 7 * time.Minute }},
		{"no slices", func(p *Params) { p.SlicesPerOffer = 0 }},
		{"jitter too large", func(p *Params) { p.SliceJitter = 8 }},
		{"negative spread", func(p *Params) { p.EnergySpreadMin = -0.1 }},
		{"spread inverted", func(p *Params) { p.EnergySpreadMax = 0.05 }},
		{"spread one", func(p *Params) { p.EnergySpreadMin = 1; p.EnergySpreadMax = 1 }},
		{"negative time flex", func(p *Params) { p.TimeFlexibility = -time.Hour }},
		{"jitter above flex", func(p *Params) { p.TimeFlexJitter = 10 * time.Hour }},
		{"lifecycle disorder", func(p *Params) { p.AcceptanceLead = p.CreationLead + time.Hour }},
	}
	for _, tc := range tests {
		p := DefaultParams()
		tc.mutate(&p)
		if err := p.Validate(); !errors.Is(err, ErrParams) {
			t.Errorf("%s: err = %v, want ErrParams", tc.name, err)
		}
	}
}

func TestCheckInput(t *testing.T) {
	p := DefaultParams()
	if err := checkInput(flatDay(1, 0.3), p); err != nil {
		t.Errorf("valid input rejected: %v", err)
	}
	if err := checkInput(nil, p); !errors.Is(err, ErrInput) {
		t.Errorf("nil input: %v", err)
	}
	empty := timeseries.MustNew(t0, 15*time.Minute, nil)
	if err := checkInput(empty, p); !errors.Is(err, ErrInput) {
		t.Errorf("empty input: %v", err)
	}
	hourly := timeseries.MustNew(t0, time.Hour, []float64{1})
	if err := checkInput(hourly, p); !errors.Is(err, ErrInput) {
		t.Errorf("wrong resolution: %v", err)
	}
	withNaN := timeseries.MustNew(t0, 15*time.Minute, []float64{1, math.NaN()})
	if err := checkInput(withNaN, p); !errors.Is(err, ErrInput) {
		t.Errorf("missing values: %v", err)
	}
	negative := timeseries.MustNew(t0, 15*time.Minute, []float64{1, -1})
	if err := checkInput(negative, p); !errors.Is(err, ErrInput) {
		t.Errorf("negative values: %v", err)
	}
}

func TestOfferBuilderEnergyInvariant(t *testing.T) {
	p := DefaultParams()
	b := newOfferBuilder("test", p)
	energies := []float64{1, 2, 3}
	f, err := b.build(t0, energies, "")
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	// Average energy equals requested energies exactly (symmetric bands).
	if !almostEqual(f.TotalAvgEnergy(), 6, 1e-9) {
		t.Errorf("TotalAvgEnergy = %v, want 6", f.TotalAvgEnergy())
	}
	for i, s := range f.Profile {
		if !almostEqual(s.AvgEnergy(), energies[i], 1e-9) {
			t.Errorf("slice %d avg = %v, want %v", i, s.AvgEnergy(), energies[i])
		}
		if s.MinEnergy > s.MaxEnergy {
			t.Errorf("slice %d inverted band", i)
		}
		spread := (s.MaxEnergy - s.MinEnergy) / (2 * energies[i])
		if spread < p.EnergySpreadMin-1e-9 || spread > p.EnergySpreadMax+1e-9 {
			t.Errorf("slice %d spread %v outside [%v, %v]", i, spread, p.EnergySpreadMin, p.EnergySpreadMax)
		}
	}
	if err := f.Validate(); err != nil {
		t.Errorf("built offer invalid: %v", err)
	}
	// Time flexibility within jitter bounds.
	tf := f.TimeFlexibility()
	if tf < p.TimeFlexibility-p.TimeFlexJitter || tf > p.TimeFlexibility+p.TimeFlexJitter {
		t.Errorf("time flexibility %v outside jitter window", tf)
	}
	// Lifecycle stamps ordered.
	if !f.CreationTime.Before(f.AcceptanceTime) || !f.AcceptanceTime.Before(f.AssignmentTime) {
		t.Error("lifecycle stamps out of order")
	}
	// Sequential IDs.
	f2, _ := b.build(t0, energies, "")
	if f.ID == f2.ID {
		t.Error("IDs not unique")
	}
}

func TestOfferBuilderEmptyEnergies(t *testing.T) {
	b := newOfferBuilder("test", DefaultParams())
	if _, err := b.build(t0, nil, ""); !errors.Is(err, ErrParams) {
		t.Errorf("empty energies: %v", err)
	}
}

func TestSliceCountJitter(t *testing.T) {
	p := DefaultParams()
	p.SlicesPerOffer = 8
	p.SliceJitter = 2
	b := newOfferBuilder("test", p)
	seen := make(map[int]bool)
	for i := 0; i < 200; i++ {
		n := b.sliceCount()
		if n < 6 || n > 10 {
			t.Fatalf("slice count %d outside [6, 10]", n)
		}
		seen[n] = true
	}
	if len(seen) < 3 {
		t.Errorf("slice count not varying: %v", seen)
	}
}

func TestSubtractProportional(t *testing.T) {
	s := timeseries.MustNew(t0, 15*time.Minute, []float64{1, 2, 3, 4})
	removed := subtractProportional(s, 0, 4, 5)
	if !almostEqual(removed, 5, 1e-9) {
		t.Fatalf("removed = %v", removed)
	}
	if !almostEqual(s.Total(), 5, 1e-9) {
		t.Errorf("remaining = %v, want 5", s.Total())
	}
	// Proportionality: ratios preserved.
	if !almostEqual(s.Value(1)/s.Value(0), 2, 1e-9) {
		t.Errorf("proportions broken: %v", s.Values())
	}
	// Requesting more than available removes only what is there.
	s2 := timeseries.MustNew(t0, 15*time.Minute, []float64{1, 1})
	removed = subtractProportional(s2, 0, 2, 10)
	if !almostEqual(removed, 2, 1e-9) || !almostEqual(s2.Total(), 0, 1e-9) {
		t.Errorf("over-subtract: removed %v, remaining %v", removed, s2.Total())
	}
	// Zero window or amount: no-op.
	s3 := timeseries.MustNew(t0, 15*time.Minute, []float64{0, 0})
	if got := subtractProportional(s3, 0, 2, 1); got != 0 {
		t.Errorf("zero window removed %v", got)
	}
	if got := subtractProportional(s, 0, 4, 0); got != 0 {
		t.Errorf("zero amount removed %v", got)
	}
}

func TestWindowEnergies(t *testing.T) {
	s := timeseries.MustNew(t0, 15*time.Minute, []float64{1, 2, 3, 4})
	got := windowEnergies(s, 1, 3)
	if len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Errorf("windowEnergies = %v", got)
	}
}
