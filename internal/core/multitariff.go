package core

import (
	"fmt"
	"math"
	"time"

	"repro/internal/flexoffer"
	"repro/internal/tariff"
	"repro/internal/timeseries"
)

// MultiTariffExtractor implements the multi-tariff approach (§3.3).
//
// Context assumption: consumers change their behaviour when a multi-tariff
// (variable-rate) scheme is introduced — they delay flexible usage into the
// low-tariff window. The extractor therefore (1) estimates the consumer's
// usual consumption from the one-tariff reference series (typical per-phase
// profile, split by day type) and (2) flags consumption in the multi-tariff
// series that exceeds that usual profile *inside low-tariff periods* as
// delayed — hence flexible — demand.
//
// The paper could not evaluate this approach for lack of paired data; the
// household simulator's tariff-response behaviour supplies it here (see
// DESIGN.md, substitution table).
type MultiTariffExtractor struct {
	Params Params
	// Tariff is the multi-tariff scheme in effect during the second
	// series.
	Tariff tariff.TimeOfUse
	// MinOfferEnergy discards contiguous excess runs carrying less energy
	// than this, filtering profile-estimation noise. Default 0.25 kWh.
	MinOfferEnergy float64
}

// Name implements Extractor.
func (e *MultiTariffExtractor) Name() string { return "multi-tariff" }

// Extract implements Extractor by treating input as the multi-tariff series
// and requiring a reference set beforehand via ExtractPair. It exists so
// MultiTariffExtractor still satisfies the Extractor interface; calling it
// without a reference is an error.
func (e *MultiTariffExtractor) Extract(input *timeseries.Series) (*Result, error) {
	return nil, fmt.Errorf("%w: multi-tariff extraction needs a one-tariff reference series; use ExtractPair", ErrInput)
}

// ExtractPair performs the extraction: oneTariff is the historical series
// under flat billing (used only as a reference and returned unchanged),
// multiTariff is the series under the multi-tariff scheme, from which
// flexibility is extracted.
func (e *MultiTariffExtractor) ExtractPair(oneTariff, multiTariff *timeseries.Series) (*Result, error) {
	p := e.Params
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := checkInput(oneTariff, p); err != nil {
		return nil, fmt.Errorf("one-tariff reference: %w", err)
	}
	if err := checkInput(multiTariff, p); err != nil {
		return nil, fmt.Errorf("multi-tariff series: %w", err)
	}
	minEnergy := e.MinOfferEnergy
	if minEnergy <= 0 {
		minEnergy = 0.25
	}
	perDay := oneTariff.IntervalsPerDay()
	if perDay == 0 {
		return nil, fmt.Errorf("%w: resolution does not divide a day", ErrInput)
	}
	// Typical profiles are phased by time of day; both series must start on
	// a midnight boundary for the per-phase statistics to be meaningful.
	for _, s := range []*timeseries.Series{oneTariff, multiTariff} {
		if !s.Start().Equal(timeseries.TruncateDay(s.Start())) {
			return nil, fmt.Errorf("%w: series must start at midnight (got %v)", ErrInput, s.Start())
		}
	}

	// Step 1: usual consumption per day type and interval-of-day, from the
	// one-tariff period ("typical behavior during the work days,
	// weekends").
	typical, err := typicalByDayType(oneTariff, perDay)
	if err != nil {
		return nil, err
	}

	// Step 2: excess over usual inside low-tariff periods is delayed
	// flexible consumption.
	modified := multiTariff.Clone()
	b := newOfferBuilder(e.Name(), p)
	var offers flexoffer.Set

	n := multiTariff.Len()
	excess := make([]float64, n)
	for i := 0; i < n; i++ {
		t := multiTariff.TimeAt(i)
		if !e.Tariff.IsLow(t) {
			continue
		}
		// The day-phase comes from the timestamp, not the array index, so
		// series that do not start at midnight stay aligned with the
		// typical profile.
		phase := int(t.Sub(timeseries.TruncateDay(t)) / multiTariff.Resolution())
		if phase >= perDay {
			phase = perDay - 1
		}
		exp := typical.at(t, phase)
		if d := multiTariff.Value(i) - exp; d > 0 {
			excess[i] = d
		}
	}

	// Group contiguous excess runs into offers.
	i := 0
	for i < n {
		if excess[i] <= 0 {
			i++
			continue
		}
		j := i
		var runEnergy float64
		for j < n && excess[j] > 0 {
			runEnergy += excess[j]
			j++
		}
		if runEnergy >= minEnergy {
			// Cap the profile at the configured length; keep the
			// highest-energy prefix alignment simple: truncate the tail.
			m := j - i
			if limit := b.sliceCount(); m > limit {
				m = limit
			}
			energies := make([]float64, m)
			var used float64
			for k := 0; k < m; k++ {
				energies[k] = excess[i+k]
				used += excess[i+k]
			}
			offer, err := b.build(multiTariff.TimeAt(i), energies, "")
			if err != nil {
				return nil, err
			}
			offers = append(offers, offer)
			for k := 0; k < m; k++ {
				modified.SetValue(i+k, modified.Value(i+k)-excess[i+k])
			}
		}
		i = j
	}
	return &Result{Offers: offers, Modified: modified, Reference: oneTariff.Clone()}, nil
}

// dayTypeProfiles holds the per-phase typical consumption split by day
// type, with a combined fallback when a day type is absent from the
// reference period.
type dayTypeProfiles struct {
	byType   map[timeseries.DayType][]float64
	fallback []float64
}

func (d *dayTypeProfiles) at(t time.Time, phase int) float64 {
	if prof, ok := d.byType[timeseries.DayTypeOf(t)]; ok {
		if v := prof[phase]; !math.IsNaN(v) {
			return v
		}
	}
	if v := d.fallback[phase]; !math.IsNaN(v) {
		return v
	}
	return 0
}

// typicalByDayType estimates the median per-phase daily profile separately
// for workdays and weekends. The median is robust against the occasional
// flexible runs present in the reference period itself.
func typicalByDayType(s *timeseries.Series, perDay int) (*dayTypeProfiles, error) {
	fallback, err := timeseries.MedianProfile(s, perDay)
	if err != nil {
		return nil, err
	}
	out := &dayTypeProfiles{byType: make(map[timeseries.DayType][]float64), fallback: fallback}
	for dt, days := range s.DaysByType() {
		// Concatenate whole days of this type and take the per-phase
		// median. Partial edge days are skipped to keep phases aligned.
		var vals []float64
		for _, day := range days {
			if day.Len() == perDay {
				vals = append(vals, day.Values()...)
			}
		}
		if len(vals) == 0 {
			continue
		}
		concat, err := timeseries.New(s.Start(), s.Resolution(), vals)
		if err != nil {
			return nil, err
		}
		prof, err := timeseries.MedianProfile(concat, perDay)
		if err != nil {
			return nil, err
		}
		out.byType[dt] = prof
	}
	return out, nil
}
