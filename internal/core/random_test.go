package core

import (
	"testing"

	"repro/internal/paperdata"
)

func TestRandomExtractOnePerDay(t *testing.T) {
	input := shapedDay(5)
	e := &RandomExtractor{Params: DefaultParams()}
	res, err := e.Extract(input)
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	if len(res.Offers) != 5 {
		t.Fatalf("offers = %d, want 5", len(res.Offers))
	}
	if err := res.Offers.Validate(); err != nil {
		t.Fatal(err)
	}
	got := res.Modified.Total() + res.Offers.TotalAvgEnergy()
	if !almostEqual(got, input.Total(), 1e-6) {
		t.Errorf("accounting: %v vs %v", got, input.Total())
	}
}

func TestRandomOffersPerDay(t *testing.T) {
	input := shapedDay(3)
	e := &RandomExtractor{Params: DefaultParams(), OffersPerDay: 4}
	res, err := e.Extract(input)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Offers) != 12 {
		t.Errorf("offers = %d, want 12", len(res.Offers))
	}
	// Total flexible share still matches the configured percentage.
	share := res.Offers.TotalAvgEnergy() / input.Total()
	if !almostEqual(share, e.Params.FlexPercentage, 1e-9) {
		t.Errorf("share = %v", share)
	}
}

// TestRandomSpreadsUniformly: over many seeds, random offers cover most of
// the day rather than concentrating on peaks — the very property the paper
// criticises.
func TestRandomSpreadsUniformly(t *testing.T) {
	input := paperdata.Figure5Day()
	hours := make(map[int]bool)
	for seed := int64(0); seed < 150; seed++ {
		p := DefaultParams()
		p.Seed = seed
		e := &RandomExtractor{Params: p}
		res, err := e.Extract(input)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range res.Offers {
			hours[f.EarliestStart.UTC().Hour()] = true
		}
	}
	if len(hours) < 18 {
		t.Errorf("random placement hit only %d distinct hours", len(hours))
	}
}

func TestRandomExtractErrors(t *testing.T) {
	e := &RandomExtractor{Params: Params{}}
	if _, err := e.Extract(shapedDay(1)); err == nil {
		t.Error("zero params succeeded")
	}
}

func TestRandomName(t *testing.T) {
	if (&RandomExtractor{}).Name() != "random" {
		t.Error("name mismatch")
	}
}
