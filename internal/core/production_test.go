package core

import (
	"errors"
	"testing"
	"time"

	"repro/internal/res"
	"repro/internal/timeseries"
)

// productionDay builds a forecast with two clear production blocks.
func productionDay() *timeseries.Series {
	vals := make([]float64, 96)
	for i := 20; i < 32; i++ { // 05:00-08:00 block
		vals[i] = 8
	}
	for i := 60; i < 76; i++ { // 15:00-19:00 block, stronger
		vals[i] = 12
	}
	return timeseries.MustNew(t0, 15*time.Minute, vals)
}

func TestProductionExtractBlocks(t *testing.T) {
	e := &ProductionExtractor{Params: DefaultParams(), ThresholdKWh: 4, StartSlack: time.Hour}
	resOut, err := e.Extract(productionDay())
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	if len(resOut.Offers) != 2 {
		t.Fatalf("offers = %d, want 2", len(resOut.Offers))
	}
	if err := resOut.Offers.Validate(); err != nil {
		t.Fatal(err)
	}
	first := resOut.Offers[0]
	if !first.EarliestStart.Equal(t0.Add(5 * time.Hour)) {
		t.Errorf("first block start = %v", first.EarliestStart)
	}
	if first.TimeFlexibility() != time.Hour {
		t.Errorf("time flexibility = %v", first.TimeFlexibility())
	}
	// Production offers carry negative energy.
	if first.TotalAvgEnergy() >= 0 {
		t.Errorf("production offer has non-negative energy %v", first.TotalAvgEnergy())
	}
	for _, s := range first.Profile {
		if s.MinEnergy >= 0 || s.MaxEnergy > 0 || s.MinEnergy > s.MaxEnergy {
			t.Errorf("bad production band %+v", s)
		}
	}
}

func TestProductionEnergyAccounting(t *testing.T) {
	forecast := productionDay()
	p := DefaultParams()
	p.SliceJitter = 0
	p.SlicesPerOffer = 16 // cover whole blocks
	e := &ProductionExtractor{Params: p, ThresholdKWh: 4}
	out, err := e.Extract(forecast)
	if err != nil {
		t.Fatal(err)
	}
	// Offered production (negated) plus remaining firm production equals
	// the forecast.
	offered := -out.Offers.TotalAvgEnergy()
	if !almostEqual(out.Modified.Total()+offered, forecast.Total(), 1e-9) {
		t.Errorf("accounting: modified %v + offered %v != forecast %v",
			out.Modified.Total(), offered, forecast.Total())
	}
}

func TestProductionUncertaintyWidensBands(t *testing.T) {
	p := DefaultParams()
	p.SliceJitter = 0
	narrow := &ProductionExtractor{Params: p, ThresholdKWh: 4, ForecastUncertainty: 0.05}
	wide := &ProductionExtractor{Params: p, ThresholdKWh: 4, ForecastUncertainty: 0.4}
	rn, err := narrow.Extract(productionDay())
	if err != nil {
		t.Fatal(err)
	}
	rw, err := wide.Extract(productionDay())
	if err != nil {
		t.Fatal(err)
	}
	if rw.Offers[0].EnergyFlexibility() <= rn.Offers[0].EnergyFlexibility() {
		t.Errorf("wide uncertainty flexibility %v <= narrow %v",
			rw.Offers[0].EnergyFlexibility(), rn.Offers[0].EnergyFlexibility())
	}
}

func TestProductionDefaultsAndFilters(t *testing.T) {
	// Default threshold is relative to the peak; the weak block vanishes
	// when MinBlockEnergy is raised.
	e := &ProductionExtractor{Params: DefaultParams(), ThresholdKWh: 4, MinBlockEnergy: 100}
	out, err := e.Extract(productionDay())
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Offers) != 2 {
		// First block carries 96 kWh < 100, second 192 kWh > 100.
		if len(out.Offers) != 1 {
			t.Fatalf("offers = %d", len(out.Offers))
		}
	}
}

func TestProductionOnSimulatedWind(t *testing.T) {
	supply, err := res.Simulate(res.DefaultWindModel(), res.DefaultTurbine(), t0, 3, 15*time.Minute, 4)
	if err != nil {
		t.Fatal(err)
	}
	e := &ProductionExtractor{Params: DefaultParams()}
	out, err := e.Extract(supply)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Offers) == 0 {
		t.Fatal("no production offers from windy series")
	}
	if err := out.Offers.Validate(); err != nil {
		t.Fatal(err)
	}
	offered := -out.Offers.TotalAvgEnergy()
	if !almostEqual(out.Modified.Total()+offered, supply.Total(), 1e-6) {
		t.Error("accounting broken on simulated wind")
	}
}

func TestProductionErrors(t *testing.T) {
	e := &ProductionExtractor{Params: Params{}}
	if _, err := e.Extract(productionDay()); !errors.Is(err, ErrParams) {
		t.Errorf("zero params: %v", err)
	}
	e2 := &ProductionExtractor{Params: DefaultParams()}
	empty := timeseries.MustNew(t0, 15*time.Minute, nil)
	if _, err := e2.Extract(empty); !errors.Is(err, ErrInput) {
		t.Errorf("empty: %v", err)
	}
	hourly := timeseries.MustNew(t0, time.Hour, []float64{1})
	if _, err := e2.Extract(hourly); !errors.Is(err, ErrInput) {
		t.Errorf("wrong resolution: %v", err)
	}
	bad := &ProductionExtractor{Params: DefaultParams(), ForecastUncertainty: 1.5}
	if _, err := bad.Extract(productionDay()); !errors.Is(err, ErrParams) {
		t.Errorf("uncertainty >= 1: %v", err)
	}
}

func TestProductionName(t *testing.T) {
	if (&ProductionExtractor{}).Name() != "production" {
		t.Error("name mismatch")
	}
}
