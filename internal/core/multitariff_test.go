package core

import (
	"errors"
	"testing"
	"time"

	"repro/internal/appliance"
	"repro/internal/household"
	"repro/internal/tariff"
	"repro/internal/timeseries"
)

var (
	testReg = appliance.Default()
	testToU = tariff.TimeOfUse{HighPrice: 0.40, LowPrice: 0.15, LowStartHour: 22, LowEndHour: 6}
)

func pairedSeries(t *testing.T, shiftProb float64, days int) (one, multi *timeseries.Series) {
	t.Helper()
	cfg := household.Config{
		ID: "mt-test", Residents: 3,
		Appliances: []string{"washing machine Y", "dishwasher Z", "television", "refrigerator"},
		BaseLoadKW: 0.25, MorningPeak: 0.8, EveningPeak: 1.2, NoiseStd: 0.08,
		Seed: 21,
	}
	flat, shifted, err := household.SimulatePair(testReg, cfg, testToU,
		tariff.Response{ShiftProbability: shiftProb}, paperTime(), days, 15*time.Minute)
	if err != nil {
		t.Fatalf("SimulatePair: %v", err)
	}
	return flat.Total, shifted.Total
}

func paperTime() time.Time { return time.Date(2012, 6, 4, 0, 0, 0, 0, time.UTC) }

func TestMultiTariffExtractsInLowWindow(t *testing.T) {
	one, multi := pairedSeries(t, 0.9, 28)
	e := &MultiTariffExtractor{Params: DefaultParams(), Tariff: testToU}
	res, err := e.ExtractPair(one, multi)
	if err != nil {
		t.Fatalf("ExtractPair: %v", err)
	}
	if len(res.Offers) == 0 {
		t.Fatal("no offers extracted despite 90% shifting")
	}
	if err := res.Offers.Validate(); err != nil {
		t.Fatal(err)
	}
	// Every offer starts inside the low-tariff window (that is where the
	// delayed consumption shows up).
	for _, f := range res.Offers {
		if !testToU.IsLow(f.EarliestStart) {
			t.Errorf("offer %s starts at %v, outside low window", f.ID, f.EarliestStart)
		}
	}
}

func TestMultiTariffEnergyAccounting(t *testing.T) {
	one, multi := pairedSeries(t, 0.9, 28)
	e := &MultiTariffExtractor{Params: DefaultParams(), Tariff: testToU}
	res, err := e.ExtractPair(one, multi)
	if err != nil {
		t.Fatalf("ExtractPair: %v", err)
	}
	got := res.Modified.Total() + res.Offers.TotalAvgEnergy()
	if !almostEqual(got, multi.Total(), 1e-6) {
		t.Errorf("accounting: modified %v + offers %v != multi %v",
			res.Modified.Total(), res.Offers.TotalAvgEnergy(), multi.Total())
	}
	// Reference series returned unchanged.
	if res.Reference == nil {
		t.Fatal("no reference series")
	}
	if !almostEqual(res.Reference.Total(), one.Total(), 1e-9) {
		t.Error("reference series modified")
	}
	if res.Modified.Min() < 0 {
		t.Error("modified went negative")
	}
}

// TestMultiTariffShiftSensitivity: more shifting behaviour → more extracted
// flexible energy (the E6 sweep's expected shape).
func TestMultiTariffShiftSensitivity(t *testing.T) {
	extract := func(prob float64) float64 {
		one, multi := pairedSeries(t, prob, 28)
		e := &MultiTariffExtractor{Params: DefaultParams(), Tariff: testToU}
		res, err := e.ExtractPair(one, multi)
		if err != nil {
			t.Fatalf("ExtractPair: %v", err)
		}
		return res.Offers.TotalAvgEnergy()
	}
	low := extract(0.1)
	high := extract(0.9)
	if high <= low {
		t.Errorf("extracted energy at p=0.9 (%v) not above p=0.1 (%v)", high, low)
	}
}

func TestMultiTariffNoShiftNearZeroExtraction(t *testing.T) {
	one, multi := pairedSeries(t, 0, 28)
	e := &MultiTariffExtractor{Params: DefaultParams(), Tariff: testToU}
	res, err := e.ExtractPair(one, multi)
	if err != nil {
		t.Fatalf("ExtractPair: %v", err)
	}
	// Without behaviour change, only noise-level excess should appear.
	share := res.Offers.TotalAvgEnergy() / multi.Total()
	if share > 0.05 {
		t.Errorf("extracted %.1f%% without any shifting", share*100)
	}
}

func TestMultiTariffExtractWithoutReferenceFails(t *testing.T) {
	e := &MultiTariffExtractor{Params: DefaultParams(), Tariff: testToU}
	if _, err := e.Extract(flatDay(1, 0.3)); !errors.Is(err, ErrInput) {
		t.Errorf("Extract without reference: %v", err)
	}
}

func TestMultiTariffInputValidation(t *testing.T) {
	e := &MultiTariffExtractor{Params: DefaultParams(), Tariff: testToU}
	good := flatDay(7, 0.3)
	empty := timeseries.MustNew(paperTime(), 15*time.Minute, nil)
	if _, err := e.ExtractPair(empty, good); !errors.Is(err, ErrInput) {
		t.Errorf("empty reference: %v", err)
	}
	if _, err := e.ExtractPair(good, empty); !errors.Is(err, ErrInput) {
		t.Errorf("empty multi series: %v", err)
	}
	bad := &MultiTariffExtractor{Params: Params{}, Tariff: testToU}
	if _, err := bad.ExtractPair(good, good); !errors.Is(err, ErrParams) {
		t.Errorf("zero params: %v", err)
	}
}

func TestMultiTariffMinOfferEnergyFilters(t *testing.T) {
	one, multi := pairedSeries(t, 0.9, 28)
	strict := &MultiTariffExtractor{Params: DefaultParams(), Tariff: testToU, MinOfferEnergy: 5}
	loose := &MultiTariffExtractor{Params: DefaultParams(), Tariff: testToU, MinOfferEnergy: 0.05}
	rs, err := strict.ExtractPair(one, multi)
	if err != nil {
		t.Fatal(err)
	}
	rl, err := loose.ExtractPair(one, multi)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Offers) >= len(rl.Offers) {
		t.Errorf("strict filter kept %d offers, loose %d", len(rs.Offers), len(rl.Offers))
	}
}

func TestMultiTariffName(t *testing.T) {
	if (&MultiTariffExtractor{}).Name() != "multi-tariff" {
		t.Error("name mismatch")
	}
}

func TestTypicalByDayTypeFallback(t *testing.T) {
	// A reference series covering only workdays: weekend lookups fall back
	// to the combined profile.
	workweek := timeseries.MustNew(paperTime(), 15*time.Minute, make([]float64, 5*96)) // Mon-Fri
	for i := 0; i < workweek.Len(); i++ {
		workweek.SetValue(i, 0.3)
	}
	profiles, err := typicalByDayType(workweek, 96)
	if err != nil {
		t.Fatal(err)
	}
	saturday := paperTime().Add(5 * 24 * time.Hour)
	if got := profiles.at(saturday, 10); got != 0.3 {
		t.Errorf("weekend fallback = %v, want 0.3", got)
	}
	// Workday phase hits the day-type profile directly.
	if got := profiles.at(paperTime(), 10); got != 0.3 {
		t.Errorf("workday lookup = %v", got)
	}
}

func TestMultiTariffRequiresMidnightStart(t *testing.T) {
	e := &MultiTariffExtractor{Params: DefaultParams(), Tariff: testToU}
	offsetSeries := timeseries.MustNew(paperTime().Add(3*time.Hour), 15*time.Minute, make([]float64, 96))
	good := flatDay(1, 0.3)
	if _, err := e.ExtractPair(offsetSeries, good); !errors.Is(err, ErrInput) {
		t.Errorf("offset reference accepted: %v", err)
	}
	if _, err := e.ExtractPair(good, offsetSeries); !errors.Is(err, ErrInput) {
		t.Errorf("offset multi series accepted: %v", err)
	}
}
