package core

import (
	"fmt"
	"time"

	"repro/internal/flexoffer"
	"repro/internal/timeseries"
)

// ProductionExtractor implements the paper's §6 future-work direction:
// extracting flex-offers from the *production* side. A RES producer with an
// accurate local weather forecast can foresee, e.g., that "wind will be
// sufficiently strong in two hours" and issue a production flex-offer whose
// start may be scheduled within a small window ("either in 2 hours or 3
// hours ahead").
//
// The extractor scans a production forecast for blocks whose output exceeds
// a threshold, and emits one flex-offer per block. Production offers carry
// negative energies (the flexoffer package's sign convention for supply);
// the energy band width grows with the configured forecast uncertainty, and
// the time flexibility reflects how far the block's start could slide.
type ProductionExtractor struct {
	Params Params
	// ThresholdKWh is the minimum per-interval production for an interval
	// to join a block. Zero selects 25 % of the series' peak output.
	ThresholdKWh float64
	// ForecastUncertainty is the relative uncertainty of the forecast
	// (e.g. 0.15): per-slice bands become [-(1+u)·e, -(1-u)·e]. Zero
	// selects 0.15.
	ForecastUncertainty float64
	// StartSlack is the time flexibility granted to each block (how far
	// the producer can delay the committed start). Zero selects one hour.
	StartSlack time.Duration
	// MinBlockEnergy drops blocks carrying less total energy. Zero
	// selects 1 kWh.
	MinBlockEnergy float64
}

// Name implements Extractor.
func (e *ProductionExtractor) Name() string { return "production" }

// Extract scans the production forecast and returns production flex-offers
// together with the modified series (the committed flexible production
// removed — what remains is the firm, non-offered production).
func (e *ProductionExtractor) Extract(forecast *timeseries.Series) (*Result, error) {
	p := e.Params
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if forecast == nil || forecast.Len() == 0 {
		return nil, fmt.Errorf("%w: empty series", ErrInput)
	}
	if forecast.Resolution() != p.SliceDuration {
		return nil, fmt.Errorf("%w: resolution %v != slice duration %v",
			ErrInput, forecast.Resolution(), p.SliceDuration)
	}
	threshold := e.ThresholdKWh
	if threshold <= 0 {
		threshold = 0.25 * forecast.Max()
	}
	uncertainty := e.ForecastUncertainty
	if uncertainty <= 0 {
		uncertainty = 0.15
	}
	if uncertainty >= 1 {
		return nil, fmt.Errorf("%w: forecast uncertainty %v >= 1", ErrParams, uncertainty)
	}
	slack := e.StartSlack
	if slack <= 0 {
		slack = time.Hour
	}
	minEnergy := e.MinBlockEnergy
	if minEnergy <= 0 {
		minEnergy = 1
	}

	modified := forecast.Clone()
	b := newOfferBuilder(e.Name(), p)
	var offers flexoffer.Set

	n := forecast.Len()
	i := 0
	for i < n {
		if forecast.Value(i) < threshold {
			i++
			continue
		}
		j := i
		var blockEnergy float64
		for j < n && forecast.Value(j) >= threshold {
			blockEnergy += forecast.Value(j)
			j++
		}
		if blockEnergy >= minEnergy {
			// Cap the profile length like the demand-side extractors.
			m := j - i
			if limit := b.sliceCount(); m > limit {
				m = limit
			}
			profile := make([]flexoffer.Slice, m)
			var offered float64
			for k := 0; k < m; k++ {
				v := forecast.Value(i + k)
				profile[k] = flexoffer.Slice{
					Duration:  p.SliceDuration,
					MinEnergy: -v * (1 + uncertainty),
					MaxEnergy: -v * (1 - uncertainty),
				}
				offered += v
			}
			b.seq++
			offer := &flexoffer.FlexOffer{
				ID:             fmt.Sprintf("%s-%04d", e.Name(), b.seq),
				ConsumerID:     p.ConsumerID,
				CreationTime:   forecast.TimeAt(i).Add(-p.CreationLead),
				AcceptanceTime: forecast.TimeAt(i).Add(-p.AcceptanceLead),
				AssignmentTime: forecast.TimeAt(i).Add(-p.AssignmentLead),
				EarliestStart:  forecast.TimeAt(i),
				LatestStart:    forecast.TimeAt(i).Add(slack),
				Profile:        profile,
			}
			if err := offer.Validate(); err != nil {
				return nil, err
			}
			offers = append(offers, offer)
			for k := 0; k < m; k++ {
				modified.SetValue(i+k, modified.Value(i+k)-forecast.Value(i+k))
			}
		}
		i = j
	}
	return &Result{Offers: offers, Modified: modified}, nil
}

var _ Extractor = (*ProductionExtractor)(nil)
