package core

import (
	"math"
	"testing"
	"time"

	"repro/internal/paperdata"
	"repro/internal/timeseries"
)

// TestFigure5Walkthrough reproduces the paper's Fig. 5 example end to end:
// eight peaks detected with the printed sizes, six filtered away at a 5 %
// flexible share (threshold 39.02 * 0.05 = 1.951 kWh), and the two
// survivors weighted 29 % / 71 %.
func TestFigure5Walkthrough(t *testing.T) {
	day := paperdata.Figure5Day()
	if !almostEqual(day.Total(), 39.02, 1e-9) {
		t.Fatalf("day total = %v, want 39.02", day.Total())
	}

	peaks := DetectPeaks(day)
	want := paperdata.Figure5Peaks()
	if len(peaks) != len(want) {
		t.Fatalf("peaks = %d, want %d: %+v", len(peaks), len(want), peaks)
	}
	for i, pk := range peaks {
		if pk.From != want[i].StartInterval || pk.To-pk.From != want[i].Length {
			t.Errorf("peak %d span [%d, %d), want start %d len %d",
				i+1, pk.From, pk.To, want[i].StartInterval, want[i].Length)
		}
		if !almostEqual(pk.Size, want[i].Size, 1e-9) {
			t.Errorf("peak %d size = %v, want %v", i+1, pk.Size, want[i].Size)
		}
	}

	flexEnergy := 0.05 * day.Total()
	if !almostEqual(flexEnergy, 1.951, 1e-9) {
		t.Fatalf("flexible part = %v, want 1.951", flexEnergy)
	}
	candidates := FilterPeaks(peaks, flexEnergy)
	if len(candidates) != 2 {
		t.Fatalf("candidates = %d, want 2 (peaks 6 and 7): %+v", len(candidates), candidates)
	}
	if !almostEqual(candidates[0].Size, 2.22, 1e-9) || !almostEqual(candidates[1].Size, 5.47, 1e-9) {
		t.Fatalf("candidate sizes = %v, %v", candidates[0].Size, candidates[1].Size)
	}

	probs := SelectionProbabilities(candidates)
	if math.Abs(probs[0]-0.29) > 0.005 {
		t.Errorf("peak 6 probability = %.4f, want ~0.29", probs[0])
	}
	if math.Abs(probs[1]-0.71) > 0.005 {
		t.Errorf("peak 7 probability = %.4f, want ~0.71", probs[1])
	}
}

func TestDetectPeaksEdgeCases(t *testing.T) {
	// Constant series: nothing above the mean.
	flat := flatDay(1, 0.3)
	if peaks := DetectPeaks(flat); len(peaks) != 0 {
		t.Errorf("peaks on constant day = %+v", peaks)
	}
	// Peak running to the end of the day is closed.
	vals := make([]float64, 96)
	for i := range vals {
		vals[i] = 0.1
	}
	for i := 90; i < 96; i++ {
		vals[i] = 1.0
	}
	day := timeseries.MustNew(t0, 15*time.Minute, vals)
	peaks := DetectPeaks(day)
	if len(peaks) != 1 || peaks[0].To != 96 {
		t.Errorf("trailing peak = %+v", peaks)
	}
	if !almostEqual(peaks[0].Size, 6.0, 1e-9) {
		t.Errorf("trailing peak size = %v", peaks[0].Size)
	}
}

func TestFilterPeaksBoundary(t *testing.T) {
	peaks := []Peak{{Size: 1.0}, {Size: 2.0}, {Size: 3.0}}
	got := FilterPeaks(peaks, 2.0)
	if len(got) != 2 || got[0].Size != 2.0 {
		t.Errorf("FilterPeaks kept %+v (boundary peak must survive)", got)
	}
	if got := FilterPeaks(nil, 1); got != nil {
		t.Errorf("FilterPeaks(nil) = %+v", got)
	}
}

func TestSelectionProbabilitiesEdgeCases(t *testing.T) {
	if got := SelectionProbabilities(nil); got != nil {
		t.Errorf("probabilities of empty = %v", got)
	}
	if got := SelectionProbabilities([]Peak{{Size: 0}}); got != nil {
		t.Errorf("probabilities of zero-size = %v", got)
	}
	probs := SelectionProbabilities([]Peak{{Size: 1}, {Size: 3}})
	if !almostEqual(probs[0], 0.25, 1e-9) || !almostEqual(probs[1], 0.75, 1e-9) {
		t.Errorf("probs = %v", probs)
	}
}

func TestPeakExtractOnePerDay(t *testing.T) {
	// Three days of the Fig. 5 profile.
	day := paperdata.Figure5Day()
	vals := append(append(day.Values(), day.Values()...), day.Values()...)
	input := timeseries.MustNew(day.Start(), 15*time.Minute, vals)
	e := &PeakExtractor{Params: DefaultParams()}
	res, err := e.Extract(input)
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	if len(res.Offers) != 3 {
		t.Fatalf("offers = %d, want 3 (one per day)", len(res.Offers))
	}
	if err := res.Offers.Validate(); err != nil {
		t.Fatal(err)
	}
	// Every offer must start on peak 6 or peak 7 (the only candidates).
	for _, f := range res.Offers {
		h := f.EarliestStart.UTC().Hour()
		onPeak6 := h == 15 // interval 62 = 15:30
		onPeak7 := h == 18 // interval 72 = 18:00
		if !onPeak6 && !onPeak7 {
			t.Errorf("offer starts at %v, not on a candidate peak", f.EarliestStart)
		}
	}
	// Accounting.
	got := res.Modified.Total() + res.Offers.TotalAvgEnergy()
	if !almostEqual(got, input.Total(), 1e-6) {
		t.Errorf("accounting: %v vs %v", got, input.Total())
	}
	if res.Modified.Min() < 0 {
		t.Error("modified went negative")
	}
}

// TestPeakSelectionFrequencies: over many seeds the selection matches the
// 29/71 split within tolerance.
func TestPeakSelectionFrequencies(t *testing.T) {
	day := paperdata.Figure5Day()
	var peak7 int
	const trials = 400
	for seed := int64(0); seed < trials; seed++ {
		p := DefaultParams()
		p.Seed = seed
		e := &PeakExtractor{Params: p}
		res, err := e.Extract(day)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Offers) != 1 {
			t.Fatalf("offers = %d", len(res.Offers))
		}
		if res.Offers[0].EarliestStart.UTC().Hour() == 18 {
			peak7++
		}
	}
	frac := float64(peak7) / trials
	if frac < 0.62 || frac > 0.80 {
		t.Errorf("peak 7 selected %.1f%% of the time, want ~71%%", frac*100)
	}
}

func TestPeakExtractNoCandidates(t *testing.T) {
	// A day whose peaks are all smaller than the flexible part: no offer.
	vals := make([]float64, 96)
	for i := range vals {
		vals[i] = 1.0
	}
	vals[10] = 1.05 // tiny bump, size 1.05 < 5% of ~96
	input := timeseries.MustNew(t0, 15*time.Minute, vals)
	e := &PeakExtractor{Params: DefaultParams()}
	res, err := e.Extract(input)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Offers) != 0 {
		t.Errorf("offers = %d, want 0", len(res.Offers))
	}
	// Modified equals input when nothing was extracted.
	if !almostEqual(res.Modified.Total(), input.Total(), 1e-9) {
		t.Error("modified changed without extraction")
	}
}

func TestPeakExtractProfileWithinPeak(t *testing.T) {
	day := paperdata.Figure5Day()
	p := DefaultParams()
	p.SliceJitter = 0
	p.SlicesPerOffer = 20 // longer than peak 7's 8 intervals
	e := &PeakExtractor{Params: p}
	res, err := e.Extract(day)
	if err != nil {
		t.Fatal(err)
	}
	f := res.Offers[0]
	// Profile truncated to the peak length (4 or 8 intervals).
	if len(f.Profile) != 4 && len(f.Profile) != 8 {
		t.Errorf("profile slices = %d, want peak length", len(f.Profile))
	}
	if f.TotalAvgEnergy() < 1.9 || f.TotalAvgEnergy() > 2.0 {
		t.Errorf("offer energy = %v, want 1.951", f.TotalAvgEnergy())
	}
}

func TestPeakExtractErrors(t *testing.T) {
	e := &PeakExtractor{Params: Params{}}
	if _, err := e.Extract(paperdata.Figure5Day()); err == nil {
		t.Error("zero params succeeded")
	}
	e2 := &PeakExtractor{Params: DefaultParams()}
	hourly := timeseries.MustNew(t0, time.Hour, []float64{1})
	if _, err := e2.Extract(hourly); err == nil {
		t.Error("wrong resolution succeeded")
	}
}

func TestPeakName(t *testing.T) {
	if (&PeakExtractor{}).Name() != "peak" {
		t.Error("name mismatch")
	}
}

func TestPeakThresholdQuantile(t *testing.T) {
	day := paperdata.Figure5Day()
	// q90 threshold keeps fewer peaks than the mean threshold.
	meanPeaks := DetectPeaksAbove(day, day.Mean())
	q90Peaks := DetectPeaksAbove(day, day.Quantile(0.9))
	if len(q90Peaks) >= len(meanPeaks) {
		t.Errorf("q90 peaks %d >= mean peaks %d", len(q90Peaks), len(meanPeaks))
	}
	// The extractor option selects the quantile threshold.
	p := DefaultParams()
	e := &PeakExtractor{Params: p, ThresholdQuantile: 0.9}
	res, err := e.Extract(day)
	if err != nil {
		t.Fatal(err)
	}
	// At q90 only the big evening peak survives the filter, so every
	// extraction lands there.
	for _, f := range res.Offers {
		if f.EarliestStart.UTC().Hour() != 18 {
			t.Errorf("q90 offer at %v, want 18:00", f.EarliestStart)
		}
	}
	// An out-of-range quantile falls back to the mean rule.
	e2 := &PeakExtractor{Params: p, ThresholdQuantile: 1.5}
	if _, err := e2.Extract(day); err != nil {
		t.Errorf("fallback extract: %v", err)
	}
}
