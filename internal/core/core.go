// Package core implements the paper's contribution: the flexibility
// extraction framework (Fig. 2) and the five extraction approaches of its
// taxonomy (Fig. 3) — basic, peak-based and multi-tariff at the total
// household consumption level, frequency-based and schedule-based at the
// appliance level — plus the random-generation baseline the paper sets out
// to replace.
//
// Every extractor consumes a historical consumption time series together
// with context information (Params) and produces flex-offers plus the
// modified time series with the extracted flexible energy subtracted, so
// that
//
//	modified total + Σ offer average energy == input total
//
// holds for every approach (energy accounting).
package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/flexoffer"
	"repro/internal/timeseries"
)

// Common errors.
var (
	ErrParams = errors.New("core: invalid parameters")
	ErrInput  = errors.New("core: invalid input series")
)

// Params is the "context information" of Fig. 2: the share of demand deemed
// flexible plus the flex-offer attribute parameters, all randomised within
// controlled variation limits to produce non-uniform offers (§3.1).
type Params struct {
	// ConsumerID stamps extracted offers.
	ConsumerID string

	// FlexPercentage is the share of consumption considered flexible
	// (the paper quotes 0.1–6.5 % for real series [7]; its Fig. 5
	// walkthrough uses 5 %).
	FlexPercentage float64

	// SliceDuration is the profile interval length (MIRABEL: 15 min).
	SliceDuration time.Duration
	// SlicesPerOffer is the nominal profile length in slices; the actual
	// count varies by ±SliceJitter.
	SlicesPerOffer int
	// SliceJitter is the maximum random deviation of the slice count.
	SliceJitter int

	// EnergySpreadMin/Max bound the relative half-width of each slice's
	// [min, max] energy band around its average (energy flexibility).
	EnergySpreadMin float64
	EnergySpreadMax float64

	// TimeFlexibility is the nominal latest-start minus earliest-start;
	// the actual value varies by ±TimeFlexJitter.
	TimeFlexibility time.Duration
	TimeFlexJitter  time.Duration

	// CreationLead, AcceptanceLead and AssignmentLead position the
	// lifecycle timestamps before the earliest start time.
	CreationLead   time.Duration
	AcceptanceLead time.Duration
	AssignmentLead time.Duration

	// Seed drives all randomisation.
	Seed int64
}

// DefaultParams returns the parameter set used across the experiments:
// 15-minute slices, two-hour profiles, 5 % flexible share (the Fig. 5
// value), four hours of time flexibility.
func DefaultParams() Params {
	return Params{
		FlexPercentage:  0.05,
		SliceDuration:   15 * time.Minute,
		SlicesPerOffer:  8,
		SliceJitter:     2,
		EnergySpreadMin: 0.1,
		EnergySpreadMax: 0.3,
		TimeFlexibility: 4 * time.Hour,
		TimeFlexJitter:  time.Hour,
		CreationLead:    12 * time.Hour,
		AcceptanceLead:  6 * time.Hour,
		AssignmentLead:  2 * time.Hour,
	}
}

// Validate checks parameter consistency. NaN in any float field is
// rejected explicitly: NaN fails every ordered comparison, so without
// these checks a NaN FlexPercentage or energy spread would sail through
// the range checks and surface later as NaN offer energies deep inside a
// pipeline worker.
func (p Params) Validate() error {
	if math.IsNaN(p.FlexPercentage) || p.FlexPercentage <= 0 || p.FlexPercentage >= 1 {
		return fmt.Errorf("%w: flex percentage %v outside (0, 1)", ErrParams, p.FlexPercentage)
	}
	if p.SliceDuration <= 0 || (24*time.Hour)%p.SliceDuration != 0 {
		return fmt.Errorf("%w: slice duration %v must divide 24h", ErrParams, p.SliceDuration)
	}
	// maxSlices bounds the profile length (a 15-minute profile of 10000
	// slices already spans 100 days); beyond any sane value, and large
	// enough that the bound never bites real configurations. It also keeps
	// 2*SliceJitter+1 far from integer overflow in the jitter draw.
	const maxSlices = 10000
	if p.SlicesPerOffer < 1 || p.SlicesPerOffer > maxSlices {
		return fmt.Errorf("%w: slices per offer %d outside [1, %d]", ErrParams, p.SlicesPerOffer, maxSlices)
	}
	if p.SliceJitter < 0 || p.SliceJitter >= p.SlicesPerOffer {
		return fmt.Errorf("%w: slice jitter %d for %d slices", ErrParams, p.SliceJitter, p.SlicesPerOffer)
	}
	if math.IsNaN(p.EnergySpreadMin) || math.IsNaN(p.EnergySpreadMax) ||
		p.EnergySpreadMin < 0 || p.EnergySpreadMax < p.EnergySpreadMin || p.EnergySpreadMax >= 1 {
		return fmt.Errorf("%w: energy spread [%v, %v]", ErrParams, p.EnergySpreadMin, p.EnergySpreadMax)
	}
	// maxHorizon bounds every open-ended duration to a year. Offers live on
	// day-to-week scales; durations near the int64 limit would overflow the
	// jitter draw (2*TimeFlexJitter) and timestamp arithmetic.
	const maxHorizon = 366 * 24 * time.Hour
	if p.TimeFlexibility < 0 || p.TimeFlexibility > maxHorizon ||
		p.TimeFlexJitter < 0 || p.TimeFlexJitter > p.TimeFlexibility {
		return fmt.Errorf("%w: time flexibility %v jitter %v", ErrParams, p.TimeFlexibility, p.TimeFlexJitter)
	}
	if p.CreationLead < p.AcceptanceLead || p.AcceptanceLead < p.AssignmentLead || p.AssignmentLead < 0 ||
		p.CreationLead > maxHorizon {
		return fmt.Errorf("%w: lifecycle leads must satisfy %v >= creation >= acceptance >= assignment >= 0",
			ErrParams, maxHorizon)
	}
	return nil
}

// Result is the Fig. 2 output: flex-offers plus the modified time series
// (input minus the flexible energy now carried by the offers). Reference is
// only set by the multi-tariff extractor (the unchanged one-tariff series).
type Result struct {
	Offers    flexoffer.Set
	Modified  *timeseries.Series
	Reference *timeseries.Series
}

// Extractor is one flexibility extraction approach operating on a total
// household consumption series.
type Extractor interface {
	// Name identifies the approach (taxonomy leaf of Fig. 3).
	Name() string
	// Extract decomposes the series into flex-offers and a modified
	// series.
	Extract(input *timeseries.Series) (*Result, error)
}

// checkInput validates a consumption series for extraction.
func checkInput(s *timeseries.Series, p Params) error {
	if s == nil || s.Len() == 0 {
		return fmt.Errorf("%w: empty series", ErrInput)
	}
	if s.Resolution() != p.SliceDuration {
		return fmt.Errorf("%w: series resolution %v != slice duration %v (resample first)",
			ErrInput, s.Resolution(), p.SliceDuration)
	}
	if s.CountMissing() > 0 {
		return fmt.Errorf("%w: %d missing values (fill first)", ErrInput, s.CountMissing())
	}
	for i := 0; i < s.Len(); i++ {
		if s.Value(i) < 0 {
			return fmt.Errorf("%w: negative consumption %v at interval %d", ErrInput, s.Value(i), i)
		}
	}
	return nil
}

// offerBuilder stamps sequential IDs and lifecycle timestamps onto offers.
type offerBuilder struct {
	params Params
	name   string
	rng    *rand.Rand
	seq    int
}

func newOfferBuilder(name string, p Params) *offerBuilder {
	return &offerBuilder{params: p, name: name, rng: rand.New(rand.NewSource(p.Seed))}
}

// build creates a validated flex-offer whose slice averages equal the given
// energies, with a randomised symmetric energy band around each (so the
// offer's total average energy equals exactly sum(energies)), a randomised
// time-flexibility window derived from the params, and lifecycle
// timestamps.
func (b *offerBuilder) build(earliest time.Time, energies []float64, applianceName string) (*flexoffer.FlexOffer, error) {
	p := b.params
	tf := p.TimeFlexibility
	if p.TimeFlexJitter > 0 {
		tf += time.Duration(b.rng.Int63n(int64(2*p.TimeFlexJitter))) - p.TimeFlexJitter
	}
	if tf < 0 {
		tf = 0
	}
	return b.buildWithFlex(earliest, energies, applianceName, tf)
}

// buildWithFlex is build with an explicit time flexibility, used by the
// appliance-level extractors where the flexibility comes from the appliance
// specification (e.g. the robot's 22 hours) rather than the shared params.
func (b *offerBuilder) buildWithFlex(earliest time.Time, energies []float64, applianceName string, tf time.Duration) (*flexoffer.FlexOffer, error) {
	if len(energies) == 0 {
		return nil, fmt.Errorf("%w: offer with no slices", ErrParams)
	}
	p := b.params
	profile := make([]flexoffer.Slice, len(energies))
	for i, e := range energies {
		spread := p.EnergySpreadMin + b.rng.Float64()*(p.EnergySpreadMax-p.EnergySpreadMin)
		profile[i] = flexoffer.Slice{
			Duration:  p.SliceDuration,
			MinEnergy: e * (1 - spread),
			MaxEnergy: e * (1 + spread),
		}
	}
	b.seq++
	f := &flexoffer.FlexOffer{
		ID:             fmt.Sprintf("%s-%04d", b.name, b.seq),
		ConsumerID:     p.ConsumerID,
		Appliance:      applianceName,
		CreationTime:   earliest.Add(-p.CreationLead),
		AcceptanceTime: earliest.Add(-p.AcceptanceLead),
		AssignmentTime: earliest.Add(-p.AssignmentLead),
		EarliestStart:  earliest,
		LatestStart:    earliest.Add(tf),
		Profile:        profile,
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return f, nil
}

// sliceCount draws the randomised profile length.
func (b *offerBuilder) sliceCount() int {
	n := b.params.SlicesPerOffer
	if b.params.SliceJitter > 0 {
		n += b.rng.Intn(2*b.params.SliceJitter+1) - b.params.SliceJitter
	}
	if n < 1 {
		n = 1
	}
	return n
}

// subtractProportional removes `amount` of energy from intervals [from, to)
// of s in place, pro-rata to each interval's share of the window's energy.
// It returns the amount actually removed (less than requested only when the
// window holds less energy than requested).
func subtractProportional(s *timeseries.Series, from, to int, amount float64) float64 {
	var window float64
	for i := from; i < to; i++ {
		window += s.Value(i)
	}
	if window <= 0 || amount <= 0 {
		return 0
	}
	if amount > window {
		amount = window
	}
	for i := from; i < to; i++ {
		v := s.Value(i)
		s.SetValue(i, v-amount*v/window)
	}
	return amount
}

// windowEnergies extracts the per-interval energies of [from, to).
func windowEnergies(s *timeseries.Series, from, to int) []float64 {
	out := make([]float64, 0, to-from)
	for i := from; i < to; i++ {
		out = append(out, s.Value(i))
	}
	return out
}
