package core

import (
	"repro/internal/flexoffer"
	"repro/internal/timeseries"
)

// Peak is one candidate consumption peak found by the peak-based approach.
type Peak struct {
	// From and To are interval indexes [From, To) within the day series.
	From, To int
	// Size is the total energy of the peak's intervals, in kWh (the
	// "peak size" annotation of Fig. 5).
	Size float64
}

// PeakExtractor implements the peak-based approach (§3.2).
//
// Context assumptions: during consumption peaks more appliances contribute,
// so there is more room for flexibility; and each consumer exhibits one
// flexible appliance usage per day, so exactly one flex-offer per consumer
// per day is extracted, positioned at a peak chosen with probability
// proportional to its size.
type PeakExtractor struct {
	Params Params
	// ThresholdQuantile overrides the peak threshold: 0 (default) uses
	// the daily per-interval mean, as in the paper's Fig. 5; a value in
	// (0, 1) uses that quantile of the day's values instead. The
	// threshold ablation (experiment E14) compares the two definitions.
	ThresholdQuantile float64
}

// Name implements Extractor.
func (e *PeakExtractor) Name() string { return "peak" }

// DetectPeaks finds the consumption peaks of a single day: maximal runs of
// consecutive intervals whose energy exceeds the day's per-interval mean
// (the "thick horizontal line" of Fig. 5).
func DetectPeaks(day *timeseries.Series) []Peak {
	return DetectPeaksAbove(day, day.Mean())
}

// DetectPeaksAbove is DetectPeaks with an explicit threshold.
func DetectPeaksAbove(day *timeseries.Series, threshold float64) []Peak {
	var peaks []Peak
	inPeak := false
	var cur Peak
	for i := 0; i < day.Len(); i++ {
		v := day.Value(i)
		if v > threshold {
			if !inPeak {
				inPeak = true
				cur = Peak{From: i}
			}
			cur.Size += v
		} else if inPeak {
			cur.To = i
			peaks = append(peaks, cur)
			inPeak = false
		}
	}
	if inPeak {
		cur.To = day.Len()
		peaks = append(peaks, cur)
	}
	return peaks
}

// FilterPeaks discards peaks whose size is below the day's flexible energy
// amount (the Fig. 5 filtering step: peaks smaller than the flexible part
// of the day cannot host the day's flex-offer).
func FilterPeaks(peaks []Peak, flexEnergy float64) []Peak {
	var out []Peak
	for _, pk := range peaks {
		if pk.Size >= flexEnergy {
			out = append(out, pk)
		}
	}
	return out
}

// SelectionProbabilities reports each candidate peak's probability of being
// selected, proportional to its size (Fig. 5: peak 6 — 29 %, peak 7 —
// 71 %). An empty or zero-size candidate list yields nil.
func SelectionProbabilities(peaks []Peak) []float64 {
	var total float64
	for _, pk := range peaks {
		total += pk.Size
	}
	if total <= 0 || len(peaks) == 0 {
		return nil
	}
	out := make([]float64, len(peaks))
	for i, pk := range peaks {
		out[i] = pk.Size / total
	}
	return out
}

// Extract implements Extractor: one offer per calendar day, positioned on a
// size-weighted random peak.
func (e *PeakExtractor) Extract(input *timeseries.Series) (*Result, error) {
	p := e.Params
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := checkInput(input, p); err != nil {
		return nil, err
	}
	modified := input.Clone()
	b := newOfferBuilder(e.Name(), p)
	var offers flexoffer.Set

	for _, day := range input.Days() {
		dayOffset, ok := input.IndexOf(day.Start())
		if !ok {
			continue
		}
		flexEnergy := p.FlexPercentage * day.Total()
		if flexEnergy <= 0 {
			continue
		}
		threshold := day.Mean()
		if e.ThresholdQuantile > 0 && e.ThresholdQuantile < 1 {
			threshold = day.Quantile(e.ThresholdQuantile)
		}
		candidates := FilterPeaks(DetectPeaksAbove(day, threshold), flexEnergy)
		probs := SelectionProbabilities(candidates)
		if probs == nil {
			continue // no peak can host the day's flexibility
		}
		// Size-weighted random selection.
		x := b.rng.Float64()
		selected := len(candidates) - 1
		for i, pr := range probs {
			x -= pr
			if x < 0 {
				selected = i
				break
			}
		}
		pk := candidates[selected]

		// Offer profile covers the peak, truncated to the configured
		// profile length; energies follow the peak's own shape.
		n := b.sliceCount()
		if n > pk.To-pk.From {
			n = pk.To - pk.From
		}
		start := dayOffset + pk.From
		shape := windowEnergies(input, start, start+n)
		var shapeSum float64
		for _, v := range shape {
			shapeSum += v
		}
		energies := make([]float64, n)
		for i := range energies {
			if shapeSum > 0 {
				energies[i] = flexEnergy * shape[i] / shapeSum
			} else {
				energies[i] = flexEnergy / float64(n)
			}
		}
		offer, err := b.build(input.TimeAt(start), energies, "")
		if err != nil {
			return nil, err
		}
		offers = append(offers, offer)
		// Remove the flexible energy from the peak itself.
		subtractProportional(modified, dayOffset+pk.From, dayOffset+pk.To, flexEnergy)
	}
	return &Result{Offers: offers, Modified: modified}, nil
}

// ensure interface conformance at compile time.
var (
	_ Extractor = (*BasicExtractor)(nil)
	_ Extractor = (*PeakExtractor)(nil)
)
