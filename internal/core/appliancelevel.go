package core

import (
	"fmt"
	"time"

	"repro/internal/appliance"
	"repro/internal/disagg"
	"repro/internal/flexoffer"
	"repro/internal/patterns"
	"repro/internal/timeseries"
)

// ApplianceReport is the Step 1 output of the appliance-level extraction
// (Fig. 6): the shortlist of appliances detected in the series, their usage
// frequencies and (for the schedule-based approach) the mined schedule.
type ApplianceReport struct {
	// Detections lists every recognised activation.
	Detections []disagg.Detection
	// Frequencies is the usage-frequency table of the shortlisted
	// appliances.
	Frequencies []patterns.Frequency
	// Schedule holds the mined habitual usage slots (schedule-based
	// extraction only).
	Schedule []patterns.ScheduleEntry
	// Shortlist names the appliances that passed the detection filter.
	Shortlist []string
}

// FrequencyExtractor implements the frequency-based appliance-level
// approach (§4.1).
//
// Context assumption: the consumption series is composed of many
// appliances; given the manufacturers' consumption profiles, the set of
// contributing appliances and their usage frequency can be derived. Step 1
// disaggregates the series against the registry and estimates per-appliance
// frequencies; Step 2 emits one flex-offer per detected usage of a
// shortlisted flexible appliance, carrying the appliance's own time
// flexibility (e.g. 22 h for the paper's vacuum-robot example).
type FrequencyExtractor struct {
	Params Params
	// Registry is the appliance specification catalogue (Table 1).
	Registry *appliance.Registry
	// Disagg tunes the Step 1 detector.
	Disagg disagg.Config
	// MinRuns is the minimum number of detected runs for an appliance to
	// enter the shortlist (default 2) — single detections are treated as
	// noise, since a usage *frequency* cannot be established from one run.
	MinRuns int
	// TransferredShortlist, when non-empty, skips the household's own
	// shortlist derivation and extracts detections of exactly these
	// appliances — the paper's §4.1 remark that "the output of the step 1
	// of the extraction can be reused for other households which exhibit
	// similar consumption characteristics". Unknown or inflexible names
	// are ignored.
	TransferredShortlist []string
}

// Name implements Extractor.
func (e *FrequencyExtractor) Name() string { return "frequency" }

// Extract implements Extractor.
func (e *FrequencyExtractor) Extract(input *timeseries.Series) (*Result, error) {
	res, _, err := e.ExtractWithReport(input)
	return res, err
}

// ExtractWithReport performs the extraction and also returns the Step 1
// report.
func (e *FrequencyExtractor) ExtractWithReport(input *timeseries.Series) (*Result, *ApplianceReport, error) {
	report, err := applianceStep1(input, e.Registry, e.Params, e.Disagg, e.MinRuns)
	if err != nil {
		return nil, nil, err
	}
	if len(e.TransferredShortlist) > 0 {
		// Reuse another household's Step 1 output: keep only names that
		// exist in the registry and are flexible.
		var kept []string
		for _, name := range e.TransferredShortlist {
			if a, ok := e.Registry.Get(name); ok && a.Flexible {
				kept = append(kept, name)
			}
		}
		report.Shortlist = kept
	}
	shortlisted := make(map[string]bool, len(report.Shortlist))
	for _, name := range report.Shortlist {
		shortlisted[name] = true
	}
	accept := func(d disagg.Detection) bool { return shortlisted[d.Appliance] }
	res, err := applianceStep2(input, e.Registry, e.Params, e.Name(), report.Detections, accept)
	if err != nil {
		return nil, nil, err
	}
	return res, report, nil
}

// ScheduleExtractor implements the schedule-based appliance-level approach
// (§4.2): like the frequency-based one, but Step 1 additionally mines the
// habitual usage schedule (hour-of-day × day-type cells), and Step 2 only
// extracts usages that conform to the schedule — habitual usages are the
// ones a consumer can plausibly shift, while one-off usages are left in the
// series.
type ScheduleExtractor struct {
	Params   Params
	Registry *appliance.Registry
	Disagg   disagg.Config
	MinRuns  int
	// MinSupport is the minimum empirical probability for a schedule cell
	// to be mined (default 0.3).
	MinSupport float64
}

// Name implements Extractor.
func (e *ScheduleExtractor) Name() string { return "schedule" }

// Extract implements Extractor.
func (e *ScheduleExtractor) Extract(input *timeseries.Series) (*Result, error) {
	res, _, err := e.ExtractWithReport(input)
	return res, err
}

// ExtractWithReport performs the extraction and also returns the Step 1
// report including the mined schedule.
func (e *ScheduleExtractor) ExtractWithReport(input *timeseries.Series) (*Result, *ApplianceReport, error) {
	report, err := applianceStep1(input, e.Registry, e.Params, e.Disagg, e.MinRuns)
	if err != nil {
		return nil, nil, err
	}
	support := e.MinSupport
	if support <= 0 {
		support = 0.3
	}
	events := detectionsToEvents(report.Detections)
	schedule, err := patterns.MineSchedule(events, input.Start(), input.End(), support)
	if err != nil {
		return nil, nil, err
	}
	report.Schedule = schedule

	scheduled := make(map[string]bool)
	for _, s := range schedule {
		scheduled[scheduleKey(s.Appliance, s.DayType, s.Hour)] = true
	}
	accept := func(d disagg.Detection) bool {
		return scheduled[scheduleKey(d.Appliance, timeseries.DayTypeOf(d.Start), d.Start.UTC().Hour())]
	}
	res, err := applianceStep2(input, e.Registry, e.Params, e.Name(), report.Detections, accept)
	if err != nil {
		return nil, nil, err
	}
	return res, report, nil
}

func scheduleKey(app string, dt timeseries.DayType, hour int) string {
	return fmt.Sprintf("%s|%d|%02d", app, dt, hour)
}

// applianceStep1 runs detection and frequency estimation shared by both
// appliance-level extractors.
func applianceStep1(input *timeseries.Series, reg *appliance.Registry, p Params, dcfg disagg.Config, minRuns int) (*ApplianceReport, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if reg == nil {
		return nil, fmt.Errorf("%w: nil appliance registry", ErrParams)
	}
	if input == nil || input.Len() == 0 {
		return nil, fmt.Errorf("%w: empty series", ErrInput)
	}
	// Appliance-level extraction wants finer granularity than the slice
	// duration (§6: 15-minute granularity is insufficient); any whole-minute
	// resolution dividing the slice duration is accepted.
	if p.SliceDuration%input.Resolution() != 0 {
		return nil, fmt.Errorf("%w: resolution %v does not divide slice duration %v",
			ErrInput, input.Resolution(), p.SliceDuration)
	}
	if minRuns <= 0 {
		minRuns = 2
	}

	det, err := disagg.Detect(input, reg, dcfg)
	if err != nil {
		return nil, err
	}
	events := detectionsToEvents(det.Detections)
	var freqs []patterns.Frequency
	if len(events) > 0 {
		freqs, err = patterns.Frequencies(events, input.Start(), input.End())
		if err != nil {
			return nil, err
		}
	}

	counts := make(map[string]int)
	for _, d := range det.Detections {
		counts[d.Appliance]++
	}
	var shortlist []string
	var keptFreqs []patterns.Frequency
	for _, f := range freqs {
		a, ok := reg.Get(f.Appliance)
		if !ok || !a.Flexible || counts[f.Appliance] < minRuns {
			continue
		}
		shortlist = append(shortlist, f.Appliance)
		keptFreqs = append(keptFreqs, f)
	}
	return &ApplianceReport{
		Detections:  det.Detections,
		Frequencies: keptFreqs,
		Shortlist:   shortlist,
	}, nil
}

// applianceStep2 turns accepted detections into flex-offers and subtracts
// their energy from the series.
func applianceStep2(input *timeseries.Series, reg *appliance.Registry, p Params, name string, detections []disagg.Detection, accept func(disagg.Detection) bool) (*Result, error) {
	modified := input.Clone()
	b := newOfferBuilder(name, p)
	var offers flexoffer.Set
	for _, d := range detections {
		if !accept(d) || d.Energy <= 0 {
			continue
		}
		app, ok := reg.Get(d.Appliance)
		if !ok {
			continue
		}
		// Profile: the appliance signature at slice resolution, scaled to
		// the detected energy.
		sig, err := app.SignatureAt(p.SliceDuration)
		if err != nil {
			return nil, err
		}
		var sigSum float64
		for _, v := range sig {
			sigSum += v
		}
		if sigSum <= 0 {
			continue
		}
		energies := make([]float64, len(sig))
		for i, v := range sig {
			energies[i] = d.Energy * v / sigSum
		}
		// Snap the start window onto the slice grid (floor, so the hour of
		// day is preserved): offers then align with 15-minute market
		// intervals and schedule directly.
		start := d.Start
		if rem := start.Sub(timeseries.TruncateDay(start)) % p.SliceDuration; rem != 0 {
			start = start.Add(-rem)
		}
		offer, err := b.buildWithFlex(start, energies, d.Appliance, app.TimeFlexibility)
		if err != nil {
			return nil, err
		}

		// Subtract the detected energy from the run's window.
		from, ok := modified.IndexOf(d.Start)
		if !ok {
			continue
		}
		to := from + int(app.RunDuration()/modified.Resolution())
		if to > modified.Len() {
			to = modified.Len()
		}
		removed := subtractProportional(modified, from, to, d.Energy)
		if removed < d.Energy-1e-9 {
			// The window held less energy than detected (should not
			// happen: detections never exceed the residual). Scale the
			// offer down to keep energy accounting exact.
			scale := removed / d.Energy
			for i := range offer.Profile {
				offer.Profile[i].MinEnergy *= scale
				offer.Profile[i].MaxEnergy *= scale
			}
		}
		offers = append(offers, offer)
	}
	return &Result{Offers: offers, Modified: modified}, nil
}

func detectionsToEvents(dets []disagg.Detection) []patterns.Event {
	events := make([]patterns.Event, len(dets))
	for i, d := range dets {
		events[i] = patterns.Event{Appliance: d.Appliance, Start: d.Start, Energy: d.Energy}
	}
	return events
}

var (
	_ Extractor = (*FrequencyExtractor)(nil)
	_ Extractor = (*ScheduleExtractor)(nil)
	_           = time.Minute
)
