package core

import (
	"errors"
	"testing"
	"time"

	"repro/internal/household"
	"repro/internal/timeseries"
)

// fineSim simulates a household at 1-minute resolution, as the
// appliance-level approaches require.
func fineSim(t *testing.T, days int, seed int64) *household.Result {
	t.Helper()
	cfg := household.Config{
		ID: "app-test", Residents: 2,
		Appliances: []string{"washing machine Y", "dishwasher Z", "vacuum cleaning robot X", "refrigerator"},
		BaseLoadKW: 0.2, MorningPeak: 0.5, EveningPeak: 0.8, NoiseStd: 0.05,
		Seed: seed,
	}
	sim, err := household.Simulate(testReg, cfg, paperTime(), days, time.Minute)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	return sim
}

func TestFrequencyExtractorEndToEnd(t *testing.T) {
	sim := fineSim(t, 14, 31)
	e := &FrequencyExtractor{Params: DefaultParams(), Registry: testReg}
	res, report, err := e.ExtractWithReport(sim.Total)
	if err != nil {
		t.Fatalf("ExtractWithReport: %v", err)
	}
	if len(res.Offers) == 0 {
		t.Fatal("no offers extracted")
	}
	if err := res.Offers.Validate(); err != nil {
		t.Fatal(err)
	}
	// Shortlist must contain the frequent flexible appliances and no
	// inflexible ones.
	short := make(map[string]bool)
	for _, name := range report.Shortlist {
		short[name] = true
		a, ok := testReg.Get(name)
		if !ok || !a.Flexible {
			t.Errorf("shortlist contains inflexible/unknown %q", name)
		}
	}
	if !short["washing machine Y"] && !short["dishwasher Z"] && !short["vacuum cleaning robot X"] {
		t.Errorf("shortlist misses all simulated flexible appliances: %v", report.Shortlist)
	}
	// Every offer names a shortlisted appliance and carries that
	// appliance's time flexibility (e.g. the robot's 22 h).
	for _, f := range res.Offers {
		if !short[f.Appliance] {
			t.Errorf("offer for non-shortlisted appliance %q", f.Appliance)
		}
		a, _ := testReg.Get(f.Appliance)
		if f.TimeFlexibility() != a.TimeFlexibility {
			t.Errorf("offer %s time flexibility %v, want appliance's %v",
				f.ID, f.TimeFlexibility(), a.TimeFlexibility)
		}
	}
	// Frequencies reported only for shortlisted appliances.
	if len(report.Frequencies) != len(report.Shortlist) {
		t.Errorf("frequencies %d != shortlist %d", len(report.Frequencies), len(report.Shortlist))
	}
}

func TestFrequencyExtractorEnergyAccounting(t *testing.T) {
	sim := fineSim(t, 14, 32)
	e := &FrequencyExtractor{Params: DefaultParams(), Registry: testReg}
	res, err := e.Extract(sim.Total)
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	got := res.Modified.Total() + res.Offers.TotalAvgEnergy()
	if !almostEqual(got, sim.Total.Total(), 1e-6) {
		t.Errorf("accounting: modified %v + offers %v != input %v",
			res.Modified.Total(), res.Offers.TotalAvgEnergy(), sim.Total.Total())
	}
	if res.Modified.Min() < -1e-9 {
		t.Errorf("modified went negative: %v", res.Modified.Min())
	}
}

// TestFrequencyExtractorFrequenciesPlausible: the mined frequency of the
// daily robot should be near 1 run/day.
func TestFrequencyExtractorFrequenciesPlausible(t *testing.T) {
	sim := fineSim(t, 28, 33)
	e := &FrequencyExtractor{Params: DefaultParams(), Registry: testReg}
	_, report, err := e.ExtractWithReport(sim.Total)
	if err != nil {
		t.Fatalf("ExtractWithReport: %v", err)
	}
	for _, f := range report.Frequencies {
		if f.Appliance == "vacuum cleaning robot X" {
			if f.RunsPerDay < 0.5 || f.RunsPerDay > 1.3 {
				t.Errorf("robot frequency = %v runs/day, want ~1", f.RunsPerDay)
			}
			return
		}
	}
	t.Error("robot not in frequency report")
}

func TestFrequencyExtractorErrors(t *testing.T) {
	e := &FrequencyExtractor{Params: DefaultParams()}
	if _, err := e.Extract(flatDay(1, 0.3)); !errors.Is(err, ErrParams) {
		t.Errorf("nil registry: %v", err)
	}
	e2 := &FrequencyExtractor{Params: DefaultParams(), Registry: testReg}
	empty := timeseries.MustNew(paperTime(), time.Minute, nil)
	if _, err := e2.Extract(empty); !errors.Is(err, ErrInput) {
		t.Errorf("empty input: %v", err)
	}
	// Resolution coarser than slice duration is rejected.
	hourly := timeseries.MustNew(paperTime(), time.Hour, make([]float64, 48))
	if _, err := e2.Extract(hourly); !errors.Is(err, ErrInput) {
		t.Errorf("coarse input: %v", err)
	}
	bad := &FrequencyExtractor{Params: Params{}, Registry: testReg}
	if _, err := bad.Extract(flatDay(1, 0.3)); !errors.Is(err, ErrParams) {
		t.Errorf("zero params: %v", err)
	}
}

func TestScheduleExtractorEndToEnd(t *testing.T) {
	sim := fineSim(t, 28, 34)
	e := &ScheduleExtractor{Params: DefaultParams(), Registry: testReg, MinSupport: 0.2}
	res, report, err := e.ExtractWithReport(sim.Total)
	if err != nil {
		t.Fatalf("ExtractWithReport: %v", err)
	}
	if len(report.Schedule) == 0 {
		t.Fatal("no schedule mined")
	}
	if err := res.Offers.Validate(); err != nil {
		t.Fatal(err)
	}
	// Every offer conforms to a mined schedule cell.
	cells := make(map[string]bool)
	for _, s := range report.Schedule {
		cells[scheduleKey(s.Appliance, s.DayType, s.Hour)] = true
	}
	for _, f := range res.Offers {
		key := scheduleKey(f.Appliance, timeseries.DayTypeOf(f.EarliestStart), f.EarliestStart.UTC().Hour())
		if !cells[key] {
			t.Errorf("offer %s (%s at %v) does not match any schedule cell", f.ID, f.Appliance, f.EarliestStart)
		}
	}
	// Accounting holds here too.
	got := res.Modified.Total() + res.Offers.TotalAvgEnergy()
	if !almostEqual(got, sim.Total.Total(), 1e-6) {
		t.Error("schedule extractor accounting broken")
	}
}

// TestScheduleSubsetOfFrequency: schedule-based extraction only emits
// habitual usages, so it extracts at most as many offers as the
// frequency-based one on the same input.
func TestScheduleSubsetOfFrequency(t *testing.T) {
	sim := fineSim(t, 28, 35)
	fe := &FrequencyExtractor{Params: DefaultParams(), Registry: testReg}
	se := &ScheduleExtractor{Params: DefaultParams(), Registry: testReg, MinSupport: 0.2}
	fr, err := fe.Extract(sim.Total)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := se.Extract(sim.Total)
	if err != nil {
		t.Fatal(err)
	}
	if len(sr.Offers) > len(fr.Offers) {
		t.Errorf("schedule offers %d > frequency offers %d", len(sr.Offers), len(fr.Offers))
	}
}

func TestScheduleExtractorHighSupportExtractsNothing(t *testing.T) {
	sim := fineSim(t, 14, 36)
	e := &ScheduleExtractor{Params: DefaultParams(), Registry: testReg, MinSupport: 0.99}
	res, report, err := e.ExtractWithReport(sim.Total)
	if err != nil {
		t.Fatalf("ExtractWithReport: %v", err)
	}
	// Random start hours almost never hit 99% support for a single cell.
	if len(report.Schedule) > 2 {
		t.Errorf("schedule at 0.99 support = %d cells", len(report.Schedule))
	}
	if len(res.Offers) > len(report.Detections) {
		t.Error("more offers than detections")
	}
}

func TestApplianceExtractorNames(t *testing.T) {
	if (&FrequencyExtractor{}).Name() != "frequency" {
		t.Error("frequency name mismatch")
	}
	if (&ScheduleExtractor{}).Name() != "schedule" {
		t.Error("schedule name mismatch")
	}
}

// TestTransferredShortlist exercises the §4.1 reuse remark: a shortlist
// derived from one household drives the extraction for a similar one.
func TestTransferredShortlist(t *testing.T) {
	donor := fineSim(t, 14, 41)
	fe := &FrequencyExtractor{Params: DefaultParams(), Registry: testReg}
	_, donorReport, err := fe.ExtractWithReport(donor.Total)
	if err != nil {
		t.Fatal(err)
	}
	if len(donorReport.Shortlist) == 0 {
		t.Fatal("donor shortlist empty")
	}

	receiver := fineSim(t, 14, 42)
	reuse := &FrequencyExtractor{
		Params: DefaultParams(), Registry: testReg,
		TransferredShortlist: append(donorReport.Shortlist, "no such appliance", "television"),
	}
	res, report, err := reuse.ExtractWithReport(receiver.Total)
	if err != nil {
		t.Fatal(err)
	}
	// Unknown and inflexible names dropped.
	for _, name := range report.Shortlist {
		a, ok := testReg.Get(name)
		if !ok || !a.Flexible {
			t.Errorf("transferred shortlist kept %q", name)
		}
	}
	if len(res.Offers) == 0 {
		t.Error("no offers via transferred shortlist")
	}
	for _, f := range res.Offers {
		found := false
		for _, name := range report.Shortlist {
			if f.Appliance == name {
				found = true
			}
		}
		if !found {
			t.Errorf("offer for %q outside transferred shortlist", f.Appliance)
		}
	}
	// Accounting still exact.
	got := res.Modified.Total() + res.Offers.TotalAvgEnergy()
	if !almostEqual(got, receiver.Total.Total(), 1e-6) {
		t.Error("accounting broken with transferred shortlist")
	}
}
