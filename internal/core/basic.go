package core

import (
	"fmt"
	"time"

	"repro/internal/flexoffer"
	"repro/internal/timeseries"
)

// BasicExtractor implements the basic approach (§3.1): the input is divided
// into periods of a few hours, a configurable percentage of each period's
// consumption is deemed flexible, and one flex-offer is extracted per
// period, with randomised attributes.
//
// Context assumption: at any given time of day, some of the household
// consumption is flexible.
type BasicExtractor struct {
	// Params is the shared context information.
	Params Params
	// PeriodDuration is the length of each extraction period. The default
	// (zero value) is 6 hours, which yields the four offers per day shown
	// in Fig. 4.
	PeriodDuration time.Duration
}

// Name implements Extractor.
func (e *BasicExtractor) Name() string { return "basic" }

// Extract implements Extractor.
//
//flexvet:hotpath the per-period scan runs once per slice of every ingested series
func (e *BasicExtractor) Extract(input *timeseries.Series) (*Result, error) {
	p := e.Params
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := checkInput(input, p); err != nil {
		return nil, err
	}
	period := e.PeriodDuration
	if period == 0 {
		period = 6 * time.Hour
	}
	if period < p.SliceDuration || period%p.SliceDuration != 0 {
		return nil, fmt.Errorf("%w: period %v not a multiple of slice duration %v", ErrParams, period, p.SliceDuration)
	}
	perPeriod := int(period / p.SliceDuration)

	modified := input.Clone()
	b := newOfferBuilder(e.Name(), p)
	// One offer per period at most: size the set to the period count.
	offers := make(flexoffer.Set, 0, (input.Len()+perPeriod-1)/perPeriod)

	for from := 0; from < input.Len(); from += perPeriod {
		to := from + perPeriod
		if to > input.Len() {
			to = input.Len()
		}
		var periodEnergy float64
		for i := from; i < to; i++ {
			periodEnergy += input.Value(i)
		}
		flexEnergy := p.FlexPercentage * periodEnergy
		if flexEnergy <= 0 {
			continue
		}

		// Profile length, bounded by the period.
		n := b.sliceCount()
		if n > to-from {
			n = to - from
		}
		// Place the profile at a random offset inside the period; the
		// flexible energy is spread over the profile following the
		// period's own consumption shape at that offset, so extracted
		// offers inherit realistic intra-profile structure.
		maxOffset := (to - from) - n
		offset := 0
		if maxOffset > 0 {
			offset = b.rng.Intn(maxOffset + 1)
		}
		start := from + offset
		shape := windowEnergies(input, start, start+n)
		var shapeSum float64
		for _, v := range shape {
			shapeSum += v
		}
		energies := make([]float64, n)
		for i := range energies {
			if shapeSum > 0 {
				energies[i] = flexEnergy * shape[i] / shapeSum
			} else {
				energies[i] = flexEnergy / float64(n)
			}
		}

		offer, err := b.build(input.TimeAt(start), energies, "")
		if err != nil {
			return nil, err
		}
		offers = append(offers, offer)
		// The offer's energy leaves the period (pro-rata across the whole
		// period, mirroring "the fraction of flexibility within each
		// period").
		subtractProportional(modified, from, to, flexEnergy)
	}
	return &Result{Offers: offers, Modified: modified}, nil
}
