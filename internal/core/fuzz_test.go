package core

import (
	"math"
	"testing"
	"time"

	"repro/internal/timeseries"
)

// FuzzParamsValidate fuzzes the context-information parameters that reach
// pipeline workers. The contract under test: Validate never panics, and a
// parameter set that Validate accepts can be fed to an extractor without
// panicking the worker — extraction may error, but every offer it does
// produce must itself validate and carry finite energies.
func FuzzParamsValidate(f *testing.F) {
	d := DefaultParams()
	f.Add(d.FlexPercentage, int64(d.SliceDuration/time.Minute), d.SlicesPerOffer, d.SliceJitter,
		d.EnergySpreadMin, d.EnergySpreadMax,
		int64(d.TimeFlexibility/time.Minute), int64(d.TimeFlexJitter/time.Minute),
		int64(d.CreationLead/time.Minute), int64(d.AcceptanceLead/time.Minute), int64(d.AssignmentLead/time.Minute))
	// Known hostile corners: NaN percentages, zero slice duration (a naive
	// 24h%duration check divides by zero), inverted leads, huge jitter.
	f.Add(math.NaN(), int64(15), 8, 2, 0.1, 0.3, int64(240), int64(60), int64(720), int64(360), int64(120))
	f.Add(0.05, int64(0), 8, 2, 0.1, 0.3, int64(240), int64(60), int64(720), int64(360), int64(120))
	f.Add(0.05, int64(15), 8, 2, math.NaN(), math.NaN(), int64(240), int64(60), int64(720), int64(360), int64(120))
	f.Add(0.05, int64(15), 1, 0, 0.0, 0.99, int64(0), int64(0), int64(0), int64(0), int64(0))
	f.Add(0.999, int64(1440), 64, 63, 0.5, 0.5, int64(240), int64(240), int64(1), int64(2), int64(3))

	f.Fuzz(func(t *testing.T, flexPct float64, sliceMin int64, slices, jitter int,
		spreadMin, spreadMax float64, tfMin, tfjMin, clMin, alMin, asMin int64) {
		p := Params{
			ConsumerID:      "fuzz",
			FlexPercentage:  flexPct,
			SliceDuration:   time.Duration(sliceMin) * time.Minute,
			SlicesPerOffer:  slices,
			SliceJitter:     jitter,
			EnergySpreadMin: spreadMin,
			EnergySpreadMax: spreadMax,
			TimeFlexibility: time.Duration(tfMin) * time.Minute,
			TimeFlexJitter:  time.Duration(tfjMin) * time.Minute,
			CreationLead:    time.Duration(clMin) * time.Minute,
			AcceptanceLead:  time.Duration(alMin) * time.Minute,
			AssignmentLead:  time.Duration(asMin) * time.Minute,
			Seed:            1,
		}
		if err := p.Validate(); err != nil {
			return // rejected; nothing more to check
		}
		// Validated params promise NaN-free randomisation inputs.
		if math.IsNaN(p.FlexPercentage) || math.IsNaN(p.EnergySpreadMin) || math.IsNaN(p.EnergySpreadMax) {
			t.Fatalf("Validate accepted NaN fields: %+v", p)
		}
		// One synthetic day at the validated slice duration. Validate
		// guarantees SliceDuration divides 24h, so this is exact; cap the
		// series so a 1-minute resolution stays cheap.
		perDay := int((24 * time.Hour) / p.SliceDuration)
		if perDay > 2000 {
			perDay = 2000
		}
		vals := make([]float64, perDay)
		for i := range vals {
			vals[i] = 0.25 + 0.5*float64(i%7)/7
		}
		input := timeseries.MustNew(time.Date(2012, 6, 4, 0, 0, 0, 0, time.UTC), p.SliceDuration, vals)

		for _, ex := range []Extractor{
			&BasicExtractor{Params: p},
			&PeakExtractor{Params: p},
			&RandomExtractor{Params: p},
		} {
			res, err := ex.Extract(input) // must not panic
			if err != nil {
				continue
			}
			if err := res.Offers.Validate(); err != nil {
				t.Fatalf("%s produced invalid offers from validated params: %v (params %+v)", ex.Name(), err, p)
			}
			if e := res.Offers.TotalAvgEnergy(); math.IsNaN(e) || math.IsInf(e, 0) {
				t.Fatalf("%s produced non-finite offer energy %v (params %+v)", ex.Name(), e, p)
			}
			if e := res.Modified.Total(); math.IsNaN(e) || math.IsInf(e, 0) {
				t.Fatalf("%s produced non-finite modified series total %v (params %+v)", ex.Name(), e, p)
			}
		}
	})
}
