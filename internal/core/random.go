package core

import (
	"repro/internal/flexoffer"
	"repro/internal/timeseries"
)

// RandomExtractor is the baseline the paper criticises (§1): it "assumes
// that consumption at every moment of a day is potentially flexible" and
// dispatches flex-offers uniformly within the day, ignoring where the
// consumption actually is. MIRABEL used this strategy before the extraction
// tools existed; the realism experiments (E10) compare every extractor
// against it.
type RandomExtractor struct {
	Params Params
	// OffersPerDay is how many offers to generate per day (default 1, for
	// comparability with the peak-based approach).
	OffersPerDay int
}

// Name implements Extractor.
func (e *RandomExtractor) Name() string { return "random" }

// Extract implements Extractor.
func (e *RandomExtractor) Extract(input *timeseries.Series) (*Result, error) {
	p := e.Params
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := checkInput(input, p); err != nil {
		return nil, err
	}
	perDayOffers := e.OffersPerDay
	if perDayOffers <= 0 {
		perDayOffers = 1
	}
	modified := input.Clone()
	b := newOfferBuilder(e.Name(), p)
	var offers flexoffer.Set

	for _, day := range input.Days() {
		dayOffset, ok := input.IndexOf(day.Start())
		if !ok {
			continue
		}
		flexEnergy := p.FlexPercentage * day.Total()
		if flexEnergy <= 0 {
			continue
		}
		perOffer := flexEnergy / float64(perDayOffers)
		for k := 0; k < perDayOffers; k++ {
			n := b.sliceCount()
			if n > day.Len() {
				n = day.Len()
			}
			// Uniformly random placement in the day — flexibility assumed
			// everywhere, the very assumption the paper calls "very
			// likely being false".
			start := dayOffset + b.rng.Intn(day.Len()-n+1)
			energies := make([]float64, n)
			for i := range energies {
				energies[i] = perOffer / float64(n)
			}
			offer, err := b.build(input.TimeAt(start), energies, "")
			if err != nil {
				return nil, err
			}
			offers = append(offers, offer)
		}
		// The day's flexible energy leaves the day uniformly.
		subtractProportional(modified, dayOffset, dayOffset+day.Len(), flexEnergy)
	}
	return &Result{Offers: offers, Modified: modified}, nil
}

var _ Extractor = (*RandomExtractor)(nil)
