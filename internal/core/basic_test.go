package core

import (
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/timeseries"
)

// shapedDay builds one day with a realistic morning/evening shape.
func shapedDay(days int) *timeseries.Series {
	vals := make([]float64, days*96)
	for i := range vals {
		h := float64(i%96) / 4
		vals[i] = 0.25 + 0.3*math.Exp(-(h-7.5)*(h-7.5)/4) + 0.5*math.Exp(-(h-19)*(h-19)/8)
	}
	return timeseries.MustNew(t0, 15*time.Minute, vals)
}

func TestBasicExtractFigure4Shape(t *testing.T) {
	// One day, 6-hour periods → four offers, as in Fig. 4.
	input := shapedDay(1)
	e := &BasicExtractor{Params: DefaultParams()}
	res, err := e.Extract(input)
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	if len(res.Offers) != 4 {
		t.Fatalf("offers = %d, want 4 (one per 6h period)", len(res.Offers))
	}
	if err := res.Offers.Validate(); err != nil {
		t.Fatalf("offers invalid: %v", err)
	}
	// Each offer sits in its own period.
	for i, f := range res.Offers {
		periodStart := t0.Add(time.Duration(i) * 6 * time.Hour)
		periodEnd := periodStart.Add(6 * time.Hour)
		if f.EarliestStart.Before(periodStart) || !f.EarliestStart.Before(periodEnd) {
			t.Errorf("offer %d earliest start %v outside period [%v, %v)", i, f.EarliestStart, periodStart, periodEnd)
		}
		// Profile fits in the period.
		if f.EarliestStart.Add(f.Duration()).After(periodEnd) {
			t.Errorf("offer %d profile spills out of its period", i)
		}
	}
}

// TestBasicEnergyAccounting: the flexible energy moved into offers leaves
// the modified series exactly.
func TestBasicEnergyAccounting(t *testing.T) {
	input := shapedDay(7)
	e := &BasicExtractor{Params: DefaultParams()}
	res, err := e.Extract(input)
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	got := res.Modified.Total() + res.Offers.TotalAvgEnergy()
	if !almostEqual(got, input.Total(), 1e-6) {
		t.Errorf("accounting: modified %v + offers %v != input %v",
			res.Modified.Total(), res.Offers.TotalAvgEnergy(), input.Total())
	}
	// Extracted share matches the configured percentage.
	share := res.Offers.TotalAvgEnergy() / input.Total()
	if !almostEqual(share, e.Params.FlexPercentage, 1e-9) {
		t.Errorf("extracted share = %v, want %v", share, e.Params.FlexPercentage)
	}
	// Modified stays non-negative.
	if res.Modified.Min() < 0 {
		t.Errorf("modified has negative values: %v", res.Modified.Min())
	}
	// Input untouched.
	if !almostEqual(input.Total(), shapedDay(7).Total(), 1e-12) {
		t.Error("input mutated")
	}
}

func TestBasicDeterministicBySeed(t *testing.T) {
	input := shapedDay(2)
	e1 := &BasicExtractor{Params: DefaultParams()}
	e2 := &BasicExtractor{Params: DefaultParams()}
	r1, err := e1.Extract(input)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e2.Extract(input)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Offers) != len(r2.Offers) {
		t.Fatal("offer counts differ")
	}
	for i := range r1.Offers {
		if !r1.Offers[i].EarliestStart.Equal(r2.Offers[i].EarliestStart) {
			t.Fatal("same seed placed offers differently")
		}
	}
	p := DefaultParams()
	p.Seed = 99
	e3 := &BasicExtractor{Params: p}
	r3, err := e3.Extract(input)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range r1.Offers {
		if !r1.Offers[i].EarliestStart.Equal(r3.Offers[i].EarliestStart) ||
			r1.Offers[i].TimeFlexibility() != r3.Offers[i].TimeFlexibility() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical randomisation")
	}
}

func TestBasicProfileFollowsConsumptionShape(t *testing.T) {
	// A period with a strong spike: the offer's slice energies should not
	// be uniform.
	vals := make([]float64, 96)
	for i := range vals {
		vals[i] = 0.1
	}
	for i := 40; i < 48; i++ {
		vals[i] = 2.0
	}
	input := timeseries.MustNew(t0, 15*time.Minute, vals)
	p := DefaultParams()
	p.SliceJitter = 0
	p.SlicesPerOffer = 24 // full 6h period
	e := &BasicExtractor{Params: p}
	res, err := e.Extract(input)
	if err != nil {
		t.Fatal(err)
	}
	// Find the offer covering the spike period (period index 1: 06:00-12:00
	// covers intervals 24..48).
	offer := res.Offers[1]
	var maxE, minE float64 = 0, math.Inf(1)
	for _, s := range offer.Profile {
		if s.AvgEnergy() > maxE {
			maxE = s.AvgEnergy()
		}
		if s.AvgEnergy() < minE {
			minE = s.AvgEnergy()
		}
	}
	if maxE <= minE*2 {
		t.Errorf("profile flat despite spike: min %v, max %v", minE, maxE)
	}
}

func TestBasicPartialTrailingPeriod(t *testing.T) {
	// 1.5 days: the last period is half-length and must still work.
	vals := make([]float64, 96+48)
	for i := range vals {
		vals[i] = 0.3
	}
	input := timeseries.MustNew(t0, 15*time.Minute, vals)
	e := &BasicExtractor{Params: DefaultParams()}
	res, err := e.Extract(input)
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	if len(res.Offers) != 6 {
		t.Errorf("offers = %d, want 6", len(res.Offers))
	}
	got := res.Modified.Total() + res.Offers.TotalAvgEnergy()
	if !almostEqual(got, input.Total(), 1e-6) {
		t.Error("accounting broken with partial period")
	}
}

func TestBasicSkipsZeroEnergyPeriods(t *testing.T) {
	vals := make([]float64, 96)
	for i := 48; i < 96; i++ {
		vals[i] = 0.5
	}
	input := timeseries.MustNew(t0, 15*time.Minute, vals)
	e := &BasicExtractor{Params: DefaultParams()}
	res, err := e.Extract(input)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Offers) != 2 {
		t.Errorf("offers = %d, want 2 (two zero periods skipped)", len(res.Offers))
	}
}

func TestBasicExtractErrors(t *testing.T) {
	e := &BasicExtractor{Params: DefaultParams(), PeriodDuration: 7 * time.Minute}
	if _, err := e.Extract(shapedDay(1)); !errors.Is(err, ErrParams) {
		t.Errorf("bad period: %v", err)
	}
	bad := BasicExtractor{Params: Params{}}
	if _, err := bad.Extract(shapedDay(1)); !errors.Is(err, ErrParams) {
		t.Errorf("zero params: %v", err)
	}
	e2 := &BasicExtractor{Params: DefaultParams()}
	hourly := timeseries.MustNew(t0, time.Hour, []float64{1, 2})
	if _, err := e2.Extract(hourly); !errors.Is(err, ErrInput) {
		t.Errorf("wrong resolution: %v", err)
	}
}

func TestBasicName(t *testing.T) {
	if (&BasicExtractor{}).Name() != "basic" {
		t.Error("name mismatch")
	}
}
