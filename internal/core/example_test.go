package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/paperdata"
)

// ExampleDetectPeaks walks the paper's Fig. 5: peaks above the daily
// average, the 5% filter, and the size-proportional selection
// probabilities.
func ExampleDetectPeaks() {
	day := paperdata.Figure5Day() // 39.02 kWh reconstruction
	peaks := core.DetectPeaks(day)
	fmt.Printf("%d peaks detected\n", len(peaks))

	flexible := 0.05 * day.Total()
	fmt.Printf("flexible part: %.3f kWh\n", flexible)

	candidates := core.FilterPeaks(peaks, flexible)
	for i, pr := range core.SelectionProbabilities(candidates) {
		fmt.Printf("candidate %d: size %.2f kWh, P = %.0f%%\n",
			i+1, candidates[i].Size, pr*100)
	}
	// Output:
	// 8 peaks detected
	// flexible part: 1.951 kWh
	// candidate 1: size 2.22 kWh, P = 29%
	// candidate 2: size 5.47 kWh, P = 71%
}

// ExampleBasicExtractor shows the basic approach (§3.1) on the
// reconstructed household day: one offer per 6-hour period carrying 5% of
// the period's consumption.
func ExampleBasicExtractor() {
	day := paperdata.Figure5Day()
	params := core.DefaultParams() // seed 0: deterministic
	result, err := (&core.BasicExtractor{Params: params}).Extract(day)
	if err != nil {
		fmt.Println("extract:", err)
		return
	}
	fmt.Printf("%d offers, %.3f kWh flexible\n", len(result.Offers), result.Offers.TotalAvgEnergy())
	fmt.Printf("accounting: %.3f = %.3f + %.3f\n",
		day.Total(), result.Modified.Total(), result.Offers.TotalAvgEnergy())
	// Output:
	// 4 offers, 1.951 kWh flexible
	// accounting: 39.020 = 37.069 + 1.951
}
