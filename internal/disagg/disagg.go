// Package disagg decomposes a total household consumption series into
// individual appliance activations — Step 1 ("Detect appliances") of the
// appliance-level flexibility extraction in Fig. 6 of the paper. The
// approach is event-based non-intrusive load monitoring: a robust base load
// is estimated and removed, rising edges in the residual propose candidate
// activation starts, and each candidate is matched against the appliance
// registry's energy signatures, greedily assigning the best-fitting
// appliance and subtracting its signature.
//
// The paper notes that 15-minute granularity is insufficient for this task
// (§6); the granularity ablation (experiment E8) quantifies exactly that
// degradation using this package at 1/5/15/30-minute resolutions.
package disagg

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/appliance"
	"repro/internal/timeseries"
)

// ErrInput is wrapped by input validation errors.
var ErrInput = errors.New("disagg: invalid input")

// Detection is one recognised appliance activation.
type Detection struct {
	// Appliance names the matched registry entry.
	Appliance string
	// Start is the detected activation start.
	Start time.Time
	// Energy is the energy attributed to the activation, in kWh.
	Energy float64
	// Score is the match quality in (0, 1]: signature coverage weighted by
	// shape correlation.
	Score float64
}

// BaseEstimator selects how the inflexible base load is estimated before
// event matching.
type BaseEstimator int

const (
	// PhaseMedian (default) uses the per-time-of-day median across days.
	// It captures the base load's daily shape precisely, but absorbs loads
	// that recur at the same time every day (e.g. a robot on a strict
	// daily schedule) — they disappear from the residual.
	PhaseMedian BaseEstimator = iota
	// BlockQuantile uses a block-wise low quantile interpolated over time.
	// It is blind to the base load's intra-day shape but cannot absorb
	// daily-periodic appliances. The estimator ablation (experiment E16)
	// compares the two.
	BlockQuantile
)

// Config tunes the detector. Zero values select documented defaults.
type Config struct {
	// EdgeThresholdKWh is the minimum interval-over-interval rise in the
	// residual that proposes a candidate start. Default: 0.008 kWh per
	// minute of resolution.
	EdgeThresholdKWh float64
	// MinCoverage is the minimum fraction of a signature's energy that
	// must be present in the residual window. Default 0.7.
	MinCoverage float64
	// MinScore is the acceptance threshold on the combined match score.
	// Default 0.6.
	MinScore float64
	// Base selects the base-load estimator (default PhaseMedian).
	Base BaseEstimator
	// BaseQuantile is the quantile used by BlockQuantile (default 0.25).
	BaseQuantile float64
	// BaseWindow is the block length used by BlockQuantile (default one
	// day).
	BaseWindow time.Duration
}

func (c *Config) setDefaults(resolution time.Duration) {
	if c.EdgeThresholdKWh <= 0 {
		c.EdgeThresholdKWh = 0.008 * resolution.Minutes()
	}
	if c.MinCoverage <= 0 {
		c.MinCoverage = 0.7
	}
	if c.MinScore <= 0 {
		c.MinScore = 0.6
	}
	if c.BaseQuantile <= 0 || c.BaseQuantile >= 1 {
		c.BaseQuantile = 0.25
	}
	if c.BaseWindow <= 0 {
		c.BaseWindow = 24 * time.Hour
	}
}

// Result bundles the detections with the residual the detector could not
// explain (total minus base estimate minus matched signatures).
type Result struct {
	Detections []Detection
	// Base is the estimated inflexible base load.
	Base *timeseries.Series
	// Residual is what remains after removing base and matches.
	Residual *timeseries.Series
}

// Detect decomposes the total series against the registry.
func Detect(total *timeseries.Series, reg *appliance.Registry, cfg Config) (*Result, error) {
	if total == nil || total.Len() == 0 {
		return nil, fmt.Errorf("%w: empty series", ErrInput)
	}
	perDay := total.IntervalsPerDay()
	if perDay == 0 {
		return nil, fmt.Errorf("%w: resolution %v does not divide a day", ErrInput, total.Resolution())
	}
	if total.Resolution()%time.Minute != 0 {
		return nil, fmt.Errorf("%w: resolution %v must be whole minutes", ErrInput, total.Resolution())
	}
	cfg.setDefaults(total.Resolution())

	n := total.Len()
	base := make([]float64, n)
	switch cfg.Base {
	case PhaseMedian:
		// Per-phase median over days: the median suppresses occasional
		// appliance runs, leaving the always-on floor with its daily
		// shape.
		baseProf, err := timeseries.MedianProfile(total, perDay)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			b := baseProf[i%perDay]
			if math.IsNaN(b) {
				b = 0
			}
			base[i] = b
		}
	case BlockQuantile:
		window := int(cfg.BaseWindow / total.Resolution())
		if window > n {
			window = n
		}
		q := cfg.BaseQuantile
		baseline, err := total.BlockQuantileBaseline(window, q)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			b := baseline.Value(i)
			if math.IsNaN(b) {
				b = 0
			}
			base[i] = b
		}
	default:
		return nil, fmt.Errorf("%w: unknown base estimator %d", ErrInput, cfg.Base)
	}

	resid := make([]float64, n)
	for i := 0; i < n; i++ {
		r := total.Value(i) - base[i]
		if math.IsNaN(r) || r < 0 {
			r = 0
		}
		resid[i] = r
	}

	// Candidate starts: rising edges of the residual.
	var candidates []int
	for i := 0; i < n; i++ {
		prev := 0.0
		if i > 0 {
			prev = resid[i-1]
		}
		if resid[i]-prev >= cfg.EdgeThresholdKWh {
			candidates = append(candidates, i)
		}
	}

	// Signatures at the series resolution, largest energy first so big
	// loads (EVs) are explained before small ones that would fit inside
	// them.
	type sigEntry struct {
		app                *appliance.Appliance
		sig                []float64
		energy             float64
		minScale, maxScale float64
	}
	var sigs []sigEntry
	for _, a := range reg.All() {
		sig, err := a.SignatureAt(total.Resolution())
		if err != nil {
			return nil, err
		}
		var e float64
		for _, v := range sig {
			e += v
		}
		if e <= 0 {
			continue
		}
		// Runs vary in total energy within the appliance's range; matching
		// rescales the nominal signature within these bounds.
		sigs = append(sigs, sigEntry{
			app: a, sig: sig, energy: e,
			minScale: a.MinRunEnergy / e,
			maxScale: a.MaxRunEnergy / e,
		})
	}
	sort.SliceStable(sigs, func(i, j int) bool { return sigs[i].energy > sigs[j].energy })

	lastEnd := make(map[string]int) // exclusive end index of the latest match per appliance
	var detections []Detection
	for _, t := range candidates {
		bestScore, bestScale := 0.0, 0.0
		bestIdx := -1
		for si, se := range sigs {
			if t+len(se.sig) > n {
				continue
			}
			if end, ok := lastEnd[se.app.Name]; ok && t < end {
				continue // one physical unit cannot run twice concurrently
			}
			scale, cov, corr := matchWindow(resid[t:t+len(se.sig)], se.sig, se.minScale, se.maxScale)
			if cov < cfg.MinCoverage {
				continue
			}
			score := cov * (0.5 + 0.5*math.Max(0, corr))
			if score >= cfg.MinScore && score > bestScore {
				bestScore, bestScale, bestIdx = score, scale, si
			}
		}
		if bestIdx < 0 {
			continue
		}
		se := sigs[bestIdx]
		var energy float64
		for i, v := range se.sig {
			take := math.Min(v*bestScale, resid[t+i])
			resid[t+i] -= take
			energy += take
		}
		lastEnd[se.app.Name] = t + len(se.sig)
		detections = append(detections, Detection{
			Appliance: se.app.Name,
			Start:     total.TimeAt(t),
			Energy:    energy,
			Score:     bestScore,
		})
	}

	baseS, err := timeseries.New(total.Start(), total.Resolution(), base)
	if err != nil {
		return nil, err
	}
	residS, err := timeseries.New(total.Start(), total.Resolution(), resid)
	if err != nil {
		return nil, err
	}
	return &Result{Detections: detections, Base: baseS, Residual: residS}, nil
}

// matchWindow compares a residual window with a signature. The signature is
// first rescaled by the least-squares factor of window onto sig, clamped to
// [minScale, maxScale] (runs vary in energy within the appliance's range).
// It reports that scale, the coverage (fraction of scaled-signature energy
// available in the window, capped per interval) and the Pearson correlation
// between the two shapes (scale-invariant).
func matchWindow(window, sig []float64, minScale, maxScale float64) (scale, coverage, corr float64) {
	var sws, sss float64
	for i, s := range sig {
		sws += window[i] * s
		sss += s * s
	}
	if sss <= 0 {
		return 0, 0, 0
	}
	scale = sws / sss // least-squares fit of window = scale*sig
	if scale < minScale {
		scale = minScale
	}
	if scale > maxScale {
		scale = maxScale
	}

	var have, want float64
	for i, s := range sig {
		have += math.Min(window[i], s*scale)
		want += s * scale
	}
	if want <= 0 {
		return scale, 0, 0
	}
	coverage = have / want

	// Shape correlation (unaffected by the scale factor).
	nf := float64(len(sig))
	var sw, ss, sww float64
	for i, s := range sig {
		sw += window[i]
		ss += s
		sww += window[i] * window[i]
	}
	cov := sws/nf - (sw/nf)*(ss/nf)
	vw := sww/nf - (sw/nf)*(sw/nf)
	vs := sss/nf - (ss/nf)*(ss/nf)
	if vw <= 0 || vs <= 0 {
		return scale, coverage, 0
	}
	return scale, coverage, cov / math.Sqrt(vw*vs)
}

// EnergyByAppliance sums detected energy per appliance.
func (r *Result) EnergyByAppliance() map[string]float64 {
	out := make(map[string]float64)
	for _, d := range r.Detections {
		out[d.Appliance] += d.Energy
	}
	return out
}
