package disagg

import (
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/appliance"
	"repro/internal/household"
	"repro/internal/timeseries"
)

var (
	reg = appliance.Default()
	t0  = time.Date(2012, 6, 4, 0, 0, 0, 0, time.UTC) // a Monday
)

// syntheticTotal builds days of flat base load (kWh per minute) and embeds
// the given appliance runs (appliance name → start minute offset, scaled by
// energy fraction within the run range).
type embeddedRun struct {
	app         string
	startMinute int
	energyFrac  float64 // 0 → MinRunEnergy, 1 → MaxRunEnergy
}

func syntheticTotal(t *testing.T, days int, basePerMin float64, runs []embeddedRun) *timeseries.Series {
	t.Helper()
	n := days * 1440
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = basePerMin
	}
	for _, r := range runs {
		a, ok := reg.Get(r.app)
		if !ok {
			t.Fatalf("unknown appliance %s", r.app)
		}
		energy := a.MinRunEnergy + r.energyFrac*(a.MaxRunEnergy-a.MinRunEnergy)
		nom := a.NominalProfile()
		var nomSum float64
		for _, v := range nom {
			nomSum += v
		}
		for i, v := range nom {
			if r.startMinute+i < n {
				vals[r.startMinute+i] += v * energy / nomSum
			}
		}
	}
	return timeseries.MustNew(t0, time.Minute, vals)
}

func TestDetectSingleCleanRun(t *testing.T) {
	total := syntheticTotal(t, 3, 0.004, []embeddedRun{
		{app: "washing machine Y", startMinute: 1440 + 600, energyFrac: 0.5},
	})
	res, err := Detect(total, reg, Config{})
	if err != nil {
		t.Fatalf("Detect: %v", err)
	}
	if len(res.Detections) != 1 {
		t.Fatalf("detections = %d, want 1: %+v", len(res.Detections), res.Detections)
	}
	d := res.Detections[0]
	if d.Appliance != "washing machine Y" {
		t.Errorf("appliance = %s", d.Appliance)
	}
	wantStart := t0.Add(time.Duration(1440+600) * time.Minute)
	if !d.Start.Equal(wantStart) {
		t.Errorf("start = %v, want %v", d.Start, wantStart)
	}
	if d.Energy < 1.8 || d.Energy > 2.4 { // true energy 2.1
		t.Errorf("energy = %v, want ~2.1", d.Energy)
	}
	if d.Score < 0.8 {
		t.Errorf("score = %v, want high", d.Score)
	}
}

func TestDetectLowEnergyRunViaScaling(t *testing.T) {
	total := syntheticTotal(t, 3, 0.004, []embeddedRun{
		{app: "washing machine Y", startMinute: 1440 + 600, energyFrac: 0}, // 1.2 kWh, 57% of nominal
	})
	res, err := Detect(total, reg, Config{})
	if err != nil {
		t.Fatalf("Detect: %v", err)
	}
	if len(res.Detections) != 1 || res.Detections[0].Appliance != "washing machine Y" {
		t.Fatalf("low-energy run not detected: %+v", res.Detections)
	}
	if e := res.Detections[0].Energy; e < 1.0 || e > 1.5 {
		t.Errorf("energy = %v, want ~1.2", e)
	}
}

func TestDetectTwoAppliances(t *testing.T) {
	total := syntheticTotal(t, 3, 0.004, []embeddedRun{
		{app: "washing machine Y", startMinute: 1440 + 300, energyFrac: 0.5},
		{app: "dishwasher Z", startMinute: 1440 + 900, energyFrac: 0.5},
	})
	res, err := Detect(total, reg, Config{})
	if err != nil {
		t.Fatalf("Detect: %v", err)
	}
	found := map[string]bool{}
	for _, d := range res.Detections {
		found[d.Appliance] = true
	}
	if !found["washing machine Y"] || !found["dishwasher Z"] {
		t.Errorf("detections = %+v", res.Detections)
	}
}

func TestDetectResidualReduced(t *testing.T) {
	total := syntheticTotal(t, 3, 0.004, []embeddedRun{
		{app: "washing machine Y", startMinute: 1440 + 600, energyFrac: 0.5},
	})
	res, err := Detect(total, reg, Config{})
	if err != nil {
		t.Fatalf("Detect: %v", err)
	}
	// Residual after subtracting the matched run should carry far less
	// energy than the run itself.
	if res.Residual.Total() > 0.5 {
		t.Errorf("residual energy = %v, want < 0.5", res.Residual.Total())
	}
	// Base estimate should reconstruct the flat base.
	if math.Abs(res.Base.Value(100)-0.004) > 1e-6 {
		t.Errorf("base estimate = %v, want 0.004", res.Base.Value(100))
	}
}

func TestDetectNothingOnPureBase(t *testing.T) {
	total := syntheticTotal(t, 3, 0.004, nil)
	res, err := Detect(total, reg, Config{})
	if err != nil {
		t.Fatalf("Detect: %v", err)
	}
	if len(res.Detections) != 0 {
		t.Errorf("detections on flat base = %+v", res.Detections)
	}
}

func TestDetectErrors(t *testing.T) {
	if _, err := Detect(nil, reg, Config{}); !errors.Is(err, ErrInput) {
		t.Errorf("nil series: %v", err)
	}
	empty := timeseries.MustNew(t0, time.Minute, nil)
	if _, err := Detect(empty, reg, Config{}); !errors.Is(err, ErrInput) {
		t.Errorf("empty series: %v", err)
	}
	odd := timeseries.MustNew(t0, 7*time.Hour, make([]float64, 10))
	if _, err := Detect(odd, reg, Config{}); !errors.Is(err, ErrInput) {
		t.Errorf("non-dividing resolution: %v", err)
	}
	subMinute := timeseries.MustNew(t0, 30*time.Second, make([]float64, 10))
	if _, err := Detect(subMinute, reg, Config{}); !errors.Is(err, ErrInput) {
		t.Errorf("sub-minute resolution: %v", err)
	}
}

func TestConfigDefaults(t *testing.T) {
	var c Config
	c.setDefaults(15 * time.Minute)
	if c.EdgeThresholdKWh != 0.008*15 {
		t.Errorf("edge default = %v", c.EdgeThresholdKWh)
	}
	if c.MinCoverage != 0.7 || c.MinScore != 0.6 {
		t.Errorf("defaults = %+v", c)
	}
	// Explicit values survive.
	c2 := Config{EdgeThresholdKWh: 1, MinCoverage: 0.5, MinScore: 0.9}
	c2.setDefaults(time.Minute)
	if c2.EdgeThresholdKWh != 1 || c2.MinCoverage != 0.5 || c2.MinScore != 0.9 {
		t.Errorf("explicit config overwritten: %+v", c2)
	}
}

func TestMatchWindow(t *testing.T) {
	sig := []float64{1, 2, 3, 2, 1}
	// Perfect match at scale 1.
	scale, cov, corr := matchWindow([]float64{1, 2, 3, 2, 1}, sig, 0.5, 1.5)
	if math.Abs(scale-1) > 1e-9 || math.Abs(cov-1) > 1e-9 || corr < 0.999 {
		t.Errorf("perfect match = (%v, %v, %v)", scale, cov, corr)
	}
	// Scaled-down run within bounds.
	scale, cov, corr = matchWindow([]float64{0.6, 1.2, 1.8, 1.2, 0.6}, sig, 0.5, 1.5)
	if math.Abs(scale-0.6) > 1e-9 || cov < 0.999 || corr < 0.999 {
		t.Errorf("scaled match = (%v, %v, %v)", scale, cov, corr)
	}
	// Scale clamped to bounds.
	scale, _, _ = matchWindow([]float64{10, 20, 30, 20, 10}, sig, 0.5, 1.5)
	if scale != 1.5 {
		t.Errorf("clamped scale = %v, want 1.5", scale)
	}
	// Empty window: low coverage.
	_, cov, _ = matchWindow([]float64{0, 0, 0, 0, 0}, sig, 0.5, 1.5)
	if cov > 0.01 {
		t.Errorf("empty window coverage = %v", cov)
	}
	// Zero signature.
	scale, cov, corr = matchWindow([]float64{1, 1}, []float64{0, 0}, 0.5, 1.5)
	if scale != 0 || cov != 0 || corr != 0 {
		t.Errorf("zero signature = (%v, %v, %v)", scale, cov, corr)
	}
}

func TestEnergyByAppliance(t *testing.T) {
	r := &Result{Detections: []Detection{
		{Appliance: "a", Energy: 1},
		{Appliance: "b", Energy: 2},
		{Appliance: "a", Energy: 3},
	}}
	got := r.EnergyByAppliance()
	if got["a"] != 4 || got["b"] != 2 {
		t.Errorf("EnergyByAppliance = %v", got)
	}
}

// matchTruth counts detections matching ground-truth activations of the
// same appliance within the tolerance.
func matchTruth(dets []Detection, truth []household.Activation, tol time.Duration) (tp int) {
	used := make([]bool, len(dets))
	for _, act := range truth {
		for i, d := range dets {
			if used[i] || d.Appliance != act.Appliance {
				continue
			}
			delta := d.Start.Sub(act.Start)
			if delta < 0 {
				delta = -delta
			}
			if delta <= tol {
				used[i] = true
				tp++
				break
			}
		}
	}
	return tp
}

// TestDetectOnSimulatedHousehold checks end-to-end recall/precision on the
// simulator's ground truth at 1-minute resolution.
func TestDetectOnSimulatedHousehold(t *testing.T) {
	cfg := household.Config{
		ID: "disagg-test", Residents: 2,
		Appliances: []string{"washing machine Y", "dishwasher Z", "refrigerator"},
		BaseLoadKW: 0.2, MorningPeak: 0.5, EveningPeak: 0.8, NoiseStd: 0.05,
		Seed: 11,
	}
	sim, err := household.Simulate(reg, cfg, t0, 14, time.Minute)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	res, err := Detect(sim.Total, reg, Config{})
	if err != nil {
		t.Fatalf("Detect: %v", err)
	}
	var truth []household.Activation
	for _, a := range sim.Activations {
		if a.Flexible {
			truth = append(truth, a)
		}
	}
	if len(truth) == 0 {
		t.Fatal("no flexible ground truth")
	}
	tp := matchTruth(res.Detections, truth, 10*time.Minute)
	recall := float64(tp) / float64(len(truth))
	if recall < 0.6 {
		t.Errorf("recall = %.2f (%d/%d), want >= 0.6", recall, tp, len(truth))
	}
	if len(res.Detections) > 0 {
		precision := float64(tp) / float64(len(res.Detections))
		if precision < 0.5 {
			t.Errorf("precision = %.2f (%d/%d), want >= 0.5", precision, tp, len(res.Detections))
		}
	}
}

// TestGranularityDegradation reproduces the paper's §6 observation: at
// 15-minute granularity appliance detection is substantially worse than at
// 1-minute granularity.
func TestGranularityDegradation(t *testing.T) {
	cfg := household.Config{
		ID: "granularity-test", Residents: 2,
		Appliances: []string{"washing machine Y", "dishwasher Z", "refrigerator"},
		BaseLoadKW: 0.2, MorningPeak: 0.5, EveningPeak: 0.8, NoiseStd: 0.05,
		Seed: 13,
	}
	sim, err := household.Simulate(reg, cfg, t0, 14, time.Minute)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	var truth []household.Activation
	for _, a := range sim.Activations {
		if a.Flexible {
			truth = append(truth, a)
		}
	}
	recallAt := func(res time.Duration) float64 {
		total, err := sim.Total.ResampleTo(res)
		if err != nil {
			t.Fatalf("resample: %v", err)
		}
		out, err := Detect(total, reg, Config{})
		if err != nil {
			t.Fatalf("Detect: %v", err)
		}
		return float64(matchTruth(out.Detections, truth, res+10*time.Minute)) / float64(len(truth))
	}
	fine := recallAt(time.Minute)
	coarse := recallAt(30 * time.Minute)
	if fine <= coarse {
		t.Errorf("recall at 1m (%.2f) not above recall at 30m (%.2f)", fine, coarse)
	}
}

// TestBlockQuantileBaseRecoversDailyPeriodicLoad exercises the phase-median
// blind spot: a load running at the same time every day is absorbed into
// the per-phase median base estimate but survives a block-quantile
// baseline.
func TestBlockQuantileBaseRecoversDailyPeriodicLoad(t *testing.T) {
	// 7 days of flat base plus a washing-machine run at exactly 10:00
	// every day.
	var runs []embeddedRun
	for d := 0; d < 7; d++ {
		runs = append(runs, embeddedRun{app: "washing machine Y", startMinute: d*1440 + 600, energyFrac: 0.5})
	}
	total := syntheticTotal(t, 7, 0.004, runs)

	median, err := Detect(total, reg, Config{Base: PhaseMedian})
	if err != nil {
		t.Fatalf("PhaseMedian: %v", err)
	}
	quant, err := Detect(total, reg, Config{Base: BlockQuantile})
	if err != nil {
		t.Fatalf("BlockQuantile: %v", err)
	}
	countWasher := func(dets []Detection) int {
		var n int
		for _, d := range dets {
			if d.Appliance == "washing machine Y" {
				n++
			}
		}
		return n
	}
	m, q := countWasher(median.Detections), countWasher(quant.Detections)
	if m >= q {
		t.Errorf("phase-median found %d washer runs, block-quantile %d; expected the quantile baseline to recover more", m, q)
	}
	if q < 5 {
		t.Errorf("block-quantile recovered only %d of 7 strictly-daily runs", q)
	}
}

func TestDetectUnknownBaseEstimator(t *testing.T) {
	total := syntheticTotal(t, 3, 0.004, nil)
	if _, err := Detect(total, reg, Config{Base: BaseEstimator(99)}); !errors.Is(err, ErrInput) {
		t.Errorf("unknown estimator: %v", err)
	}
}

func TestConfigBaseDefaults(t *testing.T) {
	var c Config
	c.setDefaults(time.Minute)
	if c.BaseQuantile != 0.25 || c.BaseWindow != 24*time.Hour {
		t.Errorf("base defaults = %+v", c)
	}
}
