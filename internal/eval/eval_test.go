package eval

import (
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/flexoffer"
	"repro/internal/household"
	"repro/internal/paperdata"
	"repro/internal/timeseries"
)

var t0 = time.Date(2012, 6, 4, 0, 0, 0, 0, time.UTC)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func simpleOffer(id string, est time.Time, energy float64) *flexoffer.FlexOffer {
	return &flexoffer.FlexOffer{
		ID: id, EarliestStart: est, LatestStart: est.Add(2 * time.Hour),
		Profile: flexoffer.UniformProfile(2, 15*time.Minute, energy/2, energy/2),
	}
}

func TestEvaluateBasicNumbers(t *testing.T) {
	day := paperdata.Figure5Day()
	offers := flexoffer.Set{
		simpleOffer("a", t0.Add(18*time.Hour), 1.951), // on the big evening peak
	}
	r, err := Evaluate(offers, day)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if !almostEqual(r.FlexibleShare, 1.951/39.02, 1e-9) {
		t.Errorf("share = %v, want 0.05", r.FlexibleShare)
	}
	if !almostEqual(r.OffersPerDay, 1, 1e-9) {
		t.Errorf("offers/day = %v", r.OffersPerDay)
	}
	// Single concentrated offer: very low entropy, all energy in peak
	// hours.
	if r.PlacementEntropy > 0.2 {
		t.Errorf("entropy = %v, want near 0", r.PlacementEntropy)
	}
	if r.PeakShare < 0.99 {
		t.Errorf("peak share = %v, want ~1", r.PeakShare)
	}
}

func TestEvaluateEmptyOffers(t *testing.T) {
	r, err := Evaluate(nil, paperdata.Figure5Day())
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if r.FlexibleShare != 0 || r.OffersPerDay != 0 || r.PlacementEntropy != 0 {
		t.Errorf("empty offers realism = %+v", r)
	}
	if _, err := Evaluate(nil, timeseries.MustNew(t0, time.Minute, nil)); !errors.Is(err, ErrInput) {
		t.Errorf("empty series: %v", err)
	}
}

// TestPeakBeatsRandomRealism reproduces the paper's core claim (E10): the
// peak-based approach places flexibility where consumption is, while the
// random baseline disperses it uniformly.
func TestPeakBeatsRandomRealism(t *testing.T) {
	// 14 identical Fig. 5 days give the approaches room to differ.
	day := paperdata.Figure5Day()
	var vals []float64
	for d := 0; d < 14; d++ {
		vals = append(vals, day.Values()...)
	}
	input := timeseries.MustNew(day.Start(), 15*time.Minute, vals)

	p := core.DefaultParams()
	peakRes, err := (&core.PeakExtractor{Params: p}).Extract(input)
	if err != nil {
		t.Fatal(err)
	}
	randRes, err := (&core.RandomExtractor{Params: p}).Extract(input)
	if err != nil {
		t.Fatal(err)
	}
	peakR, err := Evaluate(peakRes.Offers, input)
	if err != nil {
		t.Fatal(err)
	}
	randR, err := Evaluate(randRes.Offers, input)
	if err != nil {
		t.Fatal(err)
	}
	if peakR.PeakShare <= randR.PeakShare {
		t.Errorf("peak share: peak-based %v <= random %v", peakR.PeakShare, randR.PeakShare)
	}
	if peakR.ConsumptionCorrelation <= randR.ConsumptionCorrelation {
		t.Errorf("correlation: peak-based %v <= random %v", peakR.ConsumptionCorrelation, randR.ConsumptionCorrelation)
	}
	if peakR.PlacementEntropy >= randR.PlacementEntropy {
		t.Errorf("entropy: peak-based %v >= random %v", peakR.PlacementEntropy, randR.PlacementEntropy)
	}
}

func TestHourProfile(t *testing.T) {
	// 8 intervals of 15 min starting at midnight: hours 0 and 1.
	s := timeseries.MustNew(t0, 15*time.Minute, []float64{1, 1, 1, 1, 2, 2, 2, 2})
	bins := hourProfile(s)
	if bins[0] != 4 || bins[1] != 8 {
		t.Errorf("bins = %v", bins[:3])
	}
}

func TestEntropy24(t *testing.T) {
	var uniform [24]float64
	for i := range uniform {
		uniform[i] = 1
	}
	if got := entropy24(uniform); !almostEqual(got, 1, 1e-9) {
		t.Errorf("uniform entropy = %v", got)
	}
	var spike [24]float64
	spike[7] = 5
	if got := entropy24(spike); got != 0 {
		t.Errorf("spike entropy = %v", got)
	}
	var zero [24]float64
	if got := entropy24(zero); got != 0 {
		t.Errorf("zero entropy = %v", got)
	}
}

func TestTopQuartileShare(t *testing.T) {
	var amount, ref [24]float64
	for i := 0; i < 24; i++ {
		ref[i] = float64(i) // top quartile = hours 18..23
	}
	amount[20] = 3
	amount[2] = 1
	if got := topQuartileShare(amount, ref); !almostEqual(got, 0.75, 1e-9) {
		t.Errorf("share = %v, want 0.75", got)
	}
	var none [24]float64
	if got := topQuartileShare(none, ref); got != 0 {
		t.Errorf("zero amount share = %v", got)
	}
}

func TestMatchOffersScoring(t *testing.T) {
	truth := []household.Activation{
		{Appliance: "washer", Start: t0.Add(10 * time.Hour), Energy: 2, Flexible: true},
		{Appliance: "dishwasher", Start: t0.Add(19 * time.Hour), Energy: 1.5, Flexible: true},
		{Appliance: "tv", Start: t0.Add(20 * time.Hour), Energy: 0.3, Flexible: false}, // ignored
	}
	offers := flexoffer.Set{
		simpleOffer("hit", t0.Add(10*time.Hour+5*time.Minute), 2.2),
		simpleOffer("miss", t0.Add(3*time.Hour), 1.0),
	}
	stats := MatchOffers(offers, truth, 15*time.Minute)
	if stats.TruePositives != 1 || stats.FalsePositives != 1 || stats.FalseNegatives != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	if !almostEqual(stats.Precision, 0.5, 1e-9) || !almostEqual(stats.Recall, 0.5, 1e-9) {
		t.Errorf("precision/recall = %v/%v", stats.Precision, stats.Recall)
	}
	if !almostEqual(stats.F1, 0.5, 1e-9) {
		t.Errorf("F1 = %v", stats.F1)
	}
	if !almostEqual(stats.MeanEnergyError, 0.1, 1e-9) { // |2.2-2|/2
		t.Errorf("energy error = %v", stats.MeanEnergyError)
	}
}

func TestMatchOffersApplianceNameConstraint(t *testing.T) {
	truth := []household.Activation{
		{Appliance: "washer", Start: t0, Energy: 2, Flexible: true},
	}
	named := simpleOffer("x", t0, 2)
	named.Appliance = "dishwasher" // wrong appliance at the right time
	stats := MatchOffers(flexoffer.Set{named}, truth, time.Hour)
	if stats.TruePositives != 0 || stats.FalsePositives != 1 {
		t.Errorf("wrong-appliance matched: %+v", stats)
	}
	named.Appliance = "washer"
	stats = MatchOffers(flexoffer.Set{named}, truth, time.Hour)
	if stats.TruePositives != 1 {
		t.Errorf("right-appliance not matched: %+v", stats)
	}
}

func TestMatchOffersOneToOne(t *testing.T) {
	// Two offers near one activation: only one may match.
	truth := []household.Activation{
		{Appliance: "washer", Start: t0, Energy: 2, Flexible: true},
	}
	offers := flexoffer.Set{
		simpleOffer("a", t0, 2),
		simpleOffer("b", t0.Add(5*time.Minute), 2),
	}
	stats := MatchOffers(offers, truth, time.Hour)
	if stats.TruePositives != 1 || stats.FalsePositives != 1 {
		t.Errorf("double counting: %+v", stats)
	}
}

func TestMatchOffersEmpty(t *testing.T) {
	stats := MatchOffers(nil, nil, time.Hour)
	if stats.TruePositives != 0 || stats.F1 != 0 {
		t.Errorf("empty stats = %+v", stats)
	}
}

func TestEvaluateSparsenessAndAutocorrelation(t *testing.T) {
	// Two identical days, one concentrated offer per day at the same time:
	// sparse placement with strong daily autocorrelation.
	day := paperdata.Figure5Day()
	vals := append(day.Values(), day.Values()...)
	input := timeseries.MustNew(day.Start(), 15*time.Minute, vals)
	offers := flexoffer.Set{
		simpleOffer("d1", day.Start().Add(18*time.Hour), 2),
		simpleOffer("d2", day.Start().Add(42*time.Hour), 2),
	}
	r, err := Evaluate(offers, input)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	// Each offer covers 2 of 96 daily intervals → sparseness ~ 188/192.
	if r.PlacementSparseness < 0.9 {
		t.Errorf("sparseness = %v, want > 0.9", r.PlacementSparseness)
	}
	if math.IsNaN(r.PlacementAutocorrelation) || r.PlacementAutocorrelation < 0.5 {
		t.Errorf("daily autocorrelation = %v, want strong", r.PlacementAutocorrelation)
	}
	// A single-day horizon cannot estimate daily autocorrelation.
	oneDay, err := Evaluate(flexoffer.Set{offers[0]}, day)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(oneDay.PlacementAutocorrelation) {
		t.Errorf("one-day autocorrelation = %v, want NaN", oneDay.PlacementAutocorrelation)
	}
}
