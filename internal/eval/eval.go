// Package eval measures extraction quality along the two axes the paper
// discusses: (1) realism statistics of the produced flex-offers relative to
// the consumption they were extracted from — where in the day flexibility is
// placed, how concentrated it is, how it correlates with consumption (§3.1
// laments that such statistics cannot be compared against real flex-offers;
// here they at least rank approaches against the random baseline) — and
// (2) agreement with the simulator's ground-truth activations, which real
// data never offers (precision/recall/F1 of placement and energy error).
package eval

import (
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/flexoffer"
	"repro/internal/household"
	"repro/internal/kpi"
	"repro/internal/timeseries"
)

// ErrInput is wrapped by input validation errors.
var ErrInput = errors.New("eval: invalid input")

// Realism summarises where an offer set places flexibility relative to the
// consumption series it came from.
type Realism struct {
	// FlexibleShare is offered average energy over total consumption —
	// comparable with the 0.1–6.5 % band of [7].
	FlexibleShare float64
	// OffersPerDay is the average number of offers per calendar day.
	OffersPerDay float64
	// PlacementEntropy is the normalised entropy of offered energy over
	// the 24 hours of day: 1 = uniformly dispatched (the random
	// baseline's signature), lower = concentrated.
	PlacementEntropy float64
	// ConsumptionCorrelation is the Pearson correlation between the
	// hour-of-day profiles of offered energy and of consumption; high
	// values mean flexibility sits where consumption (and thus plausible
	// appliance usage) is.
	ConsumptionCorrelation float64
	// PeakShare is the fraction of offered energy placed in the top
	// quartile consumption hours of the day.
	PeakShare float64
	// PlacementSparseness is the fraction of intervals carrying no offered
	// energy — one of the §3.1 statistics ("correlation, sparseness,
	// autocorrelation") real flex-offer data would be compared on.
	PlacementSparseness float64
	// PlacementAutocorrelation is the daily-lag autocorrelation of the
	// offered-energy series; realistic extraction repeats daily patterns.
	// NaN when the horizon is shorter than two days.
	PlacementAutocorrelation float64
}

// Evaluate computes the realism statistics of offers extracted from input.
func Evaluate(offers flexoffer.Set, input *timeseries.Series) (Realism, error) {
	if input == nil || input.Len() == 0 {
		return Realism{}, fmt.Errorf("%w: empty series", ErrInput)
	}
	days := float64(input.Len()) * input.Resolution().Hours() / 24
	if days <= 0 {
		return Realism{}, fmt.Errorf("%w: zero-length horizon", ErrInput)
	}
	r := Realism{OffersPerDay: float64(len(offers)) / days}
	if total := input.Total(); total > 0 {
		r.FlexibleShare = offers.TotalAvgEnergy() / total
	}
	if len(offers) == 0 {
		return r, nil
	}

	placement, err := offers.PlacementSeries(input.Start(), input.Resolution(), input.Len())
	if err != nil {
		return Realism{}, err
	}
	offerHours := hourProfile(placement)
	consHours := hourProfile(input)

	r.PlacementEntropy = entropy24(offerHours)
	r.ConsumptionCorrelation = pearson24(offerHours, consHours)
	r.PeakShare = topQuartileShare(offerHours, consHours)
	r.PlacementSparseness = placement.Sparseness(1e-9)
	if perDay := placement.IntervalsPerDay(); perDay > 0 && placement.Len() >= 2*perDay {
		r.PlacementAutocorrelation = placement.Autocorrelation(perDay)
	} else {
		r.PlacementAutocorrelation = math.NaN()
	}
	return r, nil
}

// hourProfile sums a series into 24 hour-of-day bins.
func hourProfile(s *timeseries.Series) [24]float64 {
	var bins [24]float64
	for i := 0; i < s.Len(); i++ {
		v := s.Value(i)
		if math.IsNaN(v) {
			continue
		}
		bins[s.TimeAt(i).UTC().Hour()] += v
	}
	return bins
}

// entropy24 is the normalised Shannon entropy of a 24-bin distribution.
func entropy24(bins [24]float64) float64 {
	var total float64
	for _, v := range bins {
		if v > 0 {
			total += v
		}
	}
	if total <= 0 {
		return 0
	}
	var h float64
	for _, v := range bins {
		if v <= 0 {
			continue
		}
		p := v / total
		h -= p * math.Log(p)
	}
	return h / math.Log(24)
}

// pearson24 is the correlation between two 24-bin profiles.
func pearson24(a, b [24]float64) float64 {
	var sa, sb, saa, sbb, sab float64
	for i := 0; i < 24; i++ {
		sa += a[i]
		sb += b[i]
		saa += a[i] * a[i]
		sbb += b[i] * b[i]
		sab += a[i] * b[i]
	}
	const n = 24.0
	cov := sab/n - (sa/n)*(sb/n)
	va := saa/n - (sa/n)*(sa/n)
	vb := sbb/n - (sb/n)*(sb/n)
	if va <= 0 || vb <= 0 {
		return math.NaN()
	}
	return cov / math.Sqrt(va*vb)
}

// topQuartileShare reports the share of `amount` mass that falls into the
// six highest-`reference` hours.
func topQuartileShare(amount, reference [24]float64) float64 {
	type hv struct {
		h int
		v float64
	}
	order := make([]hv, 24)
	for i := 0; i < 24; i++ {
		order[i] = hv{i, reference[i]}
	}
	// Selection sort by reference descending (24 elements).
	for i := 0; i < 24; i++ {
		best := i
		for j := i + 1; j < 24; j++ {
			if order[j].v > order[best].v {
				best = j
			}
		}
		order[i], order[best] = order[best], order[i]
	}
	var top, total float64
	for i, o := range order {
		total += amount[o.h]
		if i < 6 {
			top += amount[o.h]
		}
	}
	if total <= 0 {
		return 0
	}
	return top / total
}

// MatchStats scores extracted offers against ground-truth flexible
// activations. The embedded kpi.PRF carries the confusion tally and its
// derived precision/recall/F1 — the same shared definitions the market's
// acceptance KPI uses (internal/kpi is the single source of truth for
// that arithmetic).
type MatchStats struct {
	kpi.PRF
	// MeanEnergyError is the mean relative energy error over matched
	// pairs.
	MeanEnergyError float64
}

// MatchOffers greedily matches offers to ground-truth flexible activations:
// an offer matches an unused activation when their starts are within tol
// and, if the offer names an appliance, the names agree. Offers are matched
// in earliest-start order against the nearest eligible activation.
func MatchOffers(offers flexoffer.Set, truth []household.Activation, tol time.Duration) MatchStats {
	var flexTruth []household.Activation
	for _, a := range truth {
		if a.Flexible {
			flexTruth = append(flexTruth, a)
		}
	}
	used := make([]bool, len(flexTruth))
	var tally kpi.Confusion
	var energyErrSum float64

	sorted := append(flexoffer.Set(nil), offers...)
	sorted.SortByEarliestStart()
	for _, f := range sorted {
		bestIdx := -1
		var bestDelta time.Duration
		for i, a := range flexTruth {
			if used[i] {
				continue
			}
			if f.Appliance != "" && f.Appliance != a.Appliance {
				continue
			}
			delta := f.EarliestStart.Sub(a.Start)
			if delta < 0 {
				delta = -delta
			}
			if delta <= tol && (bestIdx < 0 || delta < bestDelta) {
				bestIdx, bestDelta = i, delta
			}
		}
		if bestIdx < 0 {
			tally.FalsePositives++
			continue
		}
		used[bestIdx] = true
		tally.TruePositives++
		if e := flexTruth[bestIdx].Energy; e > 0 {
			energyErrSum += math.Abs(f.TotalAvgEnergy()-e) / e
		}
	}
	for _, u := range used {
		if !u {
			tally.FalseNegatives++
		}
	}
	stats := MatchStats{PRF: tally.PRF()}
	if tally.TruePositives > 0 {
		stats.MeanEnergyError = energyErrSum / float64(tally.TruePositives)
	}
	return stats
}
