// Package sched schedules flex-offers against renewable production,
// reimplementing the MIRABEL scheduling subsystem the paper builds on
// (reference [5]: "Using aggregation to improve the scheduling of flexible
// energy offers"). Given the inflexible demand (the extraction's modified
// series), a supply series (RES production) and a set of (typically
// aggregated) flex-offers, the scheduler assigns each offer a start time
// within its window and per-slice energies within its bounds so that the
// flexible demand tracks the surplus supply — "the washing machine can be
// turned on when the wind blows".
//
// The algorithm is greedy insertion ordered by offer energy, followed by
// configurable re-insertion passes (local search), which mirrors the
// heuristic style of the original BIOMA 2012 scheduler.
package sched

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/flexoffer"
	"repro/internal/timeseries"
)

// Common errors.
var (
	ErrInput = errors.New("sched: invalid input")
)

// Scheduler configures the heuristic.
type Scheduler struct {
	// Passes is the number of re-insertion refinement passes after the
	// initial greedy placement (default 2).
	Passes int
}

// Result is a complete schedule.
type Result struct {
	// Assignments holds one feasible assignment per scheduled offer,
	// in input order.
	Assignments []*flexoffer.Assignment
	// Demand is the total scheduled demand: inflexible plus assigned
	// flexible energy.
	Demand *timeseries.Series
	// Skipped lists offers that could not be placed inside the horizon.
	Skipped flexoffer.Set
}

// Metrics quantifies how well demand tracks supply.
type Metrics struct {
	// UnmatchedDemand is Σ max(0, demand−supply): energy that had to come
	// from non-RES sources, in kWh.
	UnmatchedDemand float64
	// UnusedSupply is Σ max(0, supply−demand): spilled RES energy, in kWh.
	UnusedSupply float64
	// RMSE is the root-mean-square interval imbalance.
	RMSE float64
}

// Imbalance computes the metrics for a demand/supply pair (aligned series).
func Imbalance(demand, supply *timeseries.Series) (Metrics, error) {
	if demand.Len() != supply.Len() || !demand.Start().Equal(supply.Start()) || demand.Resolution() != supply.Resolution() {
		return Metrics{}, fmt.Errorf("%w: demand and supply misaligned", ErrInput)
	}
	var m Metrics
	var sq float64
	for i := 0; i < demand.Len(); i++ {
		d := demand.Value(i) - supply.Value(i)
		if d > 0 {
			m.UnmatchedDemand += d
		} else {
			m.UnusedSupply += -d
		}
		sq += d * d
	}
	m.RMSE = math.Sqrt(sq / float64(demand.Len()))
	return m, nil
}

// Schedule places the offers. inflexible is the base demand that cannot
// move (e.g. the extraction's modified series); supply is the RES
// production over the same horizon at the same resolution. Offers whose
// slices are not exactly one interval long, or whose window lies outside
// the horizon, are reported in Skipped rather than failing the whole
// schedule.
func (s *Scheduler) Schedule(offers flexoffer.Set, inflexible, supply *timeseries.Series) (*Result, error) {
	if inflexible == nil || supply == nil || inflexible.Len() == 0 {
		return nil, fmt.Errorf("%w: empty series", ErrInput)
	}
	if inflexible.Len() != supply.Len() || !inflexible.Start().Equal(supply.Start()) || inflexible.Resolution() != supply.Resolution() {
		return nil, fmt.Errorf("%w: inflexible and supply misaligned", ErrInput)
	}
	if err := offers.Validate(); err != nil {
		return nil, err
	}
	passes := s.Passes
	if passes <= 0 {
		passes = 2
	}
	res := inflexible.Resolution()
	n := inflexible.Len()

	// remaining[i] = surplus supply after inflexible demand and placed
	// offers; may be negative.
	remaining := make([]float64, n)
	for i := 0; i < n; i++ {
		remaining[i] = supply.Value(i) - inflexible.Value(i)
	}

	type placed struct {
		offer    *flexoffer.FlexOffer
		startIdx int
		energies []float64
	}

	// Partition offers into schedulable and skipped.
	var work []*placed
	var skipped flexoffer.Set
	for _, f := range offers {
		if !schedulable(f, inflexible) {
			skipped = append(skipped, f)
			continue
		}
		work = append(work, &placed{offer: f})
	}
	// Largest offers first: they are hardest to place.
	sort.SliceStable(work, func(i, j int) bool {
		return work[i].offer.TotalAvgEnergy() > work[j].offer.TotalAvgEnergy()
	})

	// bestPlacement evaluates every feasible start and picks the one that
	// serves the most demand from surplus supply with the least overshoot.
	bestPlacement := func(f *flexoffer.FlexOffer) (int, []float64) {
		first, _ := inflexible.IndexOf(f.EarliestStart)
		steps := int(f.TimeFlexibility()/res) + 1
		nSlices := len(f.Profile)
		bestGain := math.Inf(-1)
		bestStart := -1
		var bestEnergies []float64
		for k := 0; k < steps; k++ {
			start := first + k
			if start+nSlices > n {
				break
			}
			energies := make([]float64, nSlices)
			for j, sl := range f.Profile {
				r := remaining[start+j]
				energies[j] = math.Max(sl.MinEnergy, math.Min(sl.MaxEnergy, r))
			}
			// Offers carrying a total-energy constraint need their
			// energies redistributed into the admissible total range.
			if f.TotalConstraint != nil {
				fitted, err := f.FitEnergies(energies)
				if err != nil {
					continue
				}
				energies = fitted
			}
			gain := 0.0
			for j, e := range energies {
				r := remaining[start+j]
				served := math.Min(e, math.Max(r, 0))
				overshoot := e - served
				gain += served - overshoot
			}
			if gain > bestGain {
				bestGain, bestStart, bestEnergies = gain, start, energies
			}
		}
		return bestStart, bestEnergies
	}

	apply := func(p *placed, sign float64) {
		for j, e := range p.energies {
			remaining[p.startIdx+j] -= sign * e
		}
	}

	// Initial greedy placement.
	for _, p := range work {
		start, energies := bestPlacement(p.offer)
		if start < 0 {
			// Window starts inside the horizon but the profile spills
			// past its end for every feasible start.
			skipped = append(skipped, p.offer)
			p.startIdx = -1
			continue
		}
		p.startIdx, p.energies = start, energies
		apply(p, 1)
	}

	// Re-insertion passes: remove and re-place each offer greedily.
	for pass := 0; pass < passes; pass++ {
		for _, p := range work {
			if p.startIdx < 0 {
				continue
			}
			apply(p, -1)
			start, energies := bestPlacement(p.offer)
			p.startIdx, p.energies = start, energies
			apply(p, 1)
		}
	}

	// Materialise assignments and the demand series.
	demand := inflexible.Clone()
	var assignments []*flexoffer.Assignment
	for _, p := range work {
		if p.startIdx < 0 {
			continue
		}
		asg, err := p.offer.Assign(inflexible.TimeAt(p.startIdx), p.energies)
		if err != nil {
			return nil, fmt.Errorf("sched: internal placement infeasible for %s: %w", p.offer.ID, err)
		}
		assignments = append(assignments, asg)
		if _, err := asg.AddToSeries(demand); err != nil {
			return nil, err
		}
	}
	return &Result{Assignments: assignments, Demand: demand, Skipped: skipped}, nil
}

// schedulable reports whether the offer can be scheduled on the horizon
// grid: slice duration equals the resolution, the earliest start lies on
// the grid inside the horizon, and at least one start fits the profile.
func schedulable(f *flexoffer.FlexOffer, horizon *timeseries.Series) bool {
	res := horizon.Resolution()
	for _, sl := range f.Profile {
		if sl.Duration != res {
			return false
		}
	}
	idx, ok := horizon.IndexOf(f.EarliestStart)
	if !ok {
		return false
	}
	if !horizon.TimeAt(idx).Equal(f.EarliestStart) {
		return false // off-grid start
	}
	// Later starts reach further right, so if the earliest start does not
	// fit the profile inside the horizon, nothing does.
	return idx+len(f.Profile) <= horizon.Len()
}

// ScheduleAtEarliest is the no-optimisation baseline: every offer starts at
// its earliest start with average energies — i.e. flexibility is ignored.
// Comparing its imbalance with Schedule's quantifies the value of
// flexibility (experiment E12).
func ScheduleAtEarliest(offers flexoffer.Set, inflexible *timeseries.Series) (*Result, error) {
	if inflexible == nil || inflexible.Len() == 0 {
		return nil, fmt.Errorf("%w: empty series", ErrInput)
	}
	if err := offers.Validate(); err != nil {
		return nil, err
	}
	demand := inflexible.Clone()
	var assignments []*flexoffer.Assignment
	var skipped flexoffer.Set
	for _, f := range offers {
		asg, err := f.AssignDefault(f.EarliestStart)
		if err != nil {
			skipped = append(skipped, f)
			continue
		}
		if _, err := asg.AddToSeries(demand); err != nil {
			return nil, err
		}
		assignments = append(assignments, asg)
	}
	return &Result{Assignments: assignments, Demand: demand, Skipped: skipped}, nil
}

// Horizon builds an aligned zero series matching s — a convenience for
// constructing supply/demand pairs in tests and experiments.
func Horizon(s *timeseries.Series) *timeseries.Series {
	z, err := timeseries.Zeros(s.Start(), s.Resolution(), s.Len())
	if err != nil {
		panic(err) // cannot happen: s is a valid series
	}
	return z
}
