package sched

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/flexoffer"
	"repro/internal/market"
	"repro/internal/res"
)

var svcT0 = time.Date(2012, 6, 4, 0, 0, 0, 0, time.UTC)

// svcClock is a controllable clock shared by the service tests.
type svcClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *svcClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// svcOffer builds a grid-aligned offer the scheduler can place: slices of
// 15 min, earliest start est, time flexibility tf, deadlines one hour
// before the start window.
func svcOffer(id string, est time.Time, tf time.Duration, slices int, minE, maxE float64) *flexoffer.FlexOffer {
	return &flexoffer.FlexOffer{
		ID:             id,
		ConsumerID:     "svc",
		CreationTime:   svcT0,
		AcceptanceTime: est.Add(-time.Hour),
		AssignmentTime: est.Add(-30 * time.Minute),
		EarliestStart:  est,
		LatestStart:    est.Add(tf),
		Profile:        flexoffer.UniformProfile(slices, 15*time.Minute, minE, maxE),
	}
}

// acceptOffer submits and accepts one offer.
func acceptOffer(t *testing.T, store *market.Store, f *flexoffer.FlexOffer) {
	t.Helper()
	if err := store.Submit(f); err != nil {
		t.Fatalf("Submit %s: %v", f.ID, err)
	}
	if err := store.Accept(f.ID); err != nil {
		t.Fatalf("Accept %s: %v", f.ID, err)
	}
}

func newTestService(t *testing.T, store *market.Store, clock *svcClock, ledgerDir string) *Service {
	t.Helper()
	svc, err := New(Config{
		Store:      store,
		Supply:     FlatSupply(10),
		Clock:      clock.Now,
		Horizon:    6 * time.Hour,
		Resolution: 15 * time.Minute,
		LedgerDir:  ledgerDir,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return svc
}

func TestServiceEndToEnd(t *testing.T) {
	clock := &svcClock{now: svcT0}
	store := market.NewShardedStore(4, clock.Now)

	// o1 and o2 share an EST bucket, phase and time-flexibility bucket, so
	// they aggregate together; o3 sits in a later bucket; o4 stays Offered
	// and must not be scheduled.
	o1 := svcOffer("o1", svcT0.Add(2*time.Hour), time.Hour, 4, 0.5, 1.0)
	o2 := svcOffer("o2", svcT0.Add(2*time.Hour).Add(15*time.Minute), time.Hour, 4, 0.5, 1.0)
	o3 := svcOffer("o3", svcT0.Add(4*time.Hour).Add(30*time.Minute), 30*time.Minute, 2, 1.0, 2.0)
	for _, f := range []*flexoffer.FlexOffer{o1, o2, o3} {
		acceptOffer(t, store, f)
	}
	o4 := svcOffer("o4", svcT0.Add(2*time.Hour), time.Hour, 4, 0.5, 1.0)
	if err := store.Submit(o4); err != nil {
		t.Fatal(err)
	}

	svc := newTestService(t, store, clock, filepath.Join(t.TempDir(), "sched"))
	defer svc.Close()

	aggs, err := svc.Aggregates()
	if err != nil {
		t.Fatalf("Aggregates: %v", err)
	}
	if len(aggs) != 2 {
		t.Fatalf("got %d aggregates, want 2: %+v", len(aggs), aggs)
	}

	summary, err := svc.RunOnce()
	if err != nil {
		t.Fatalf("RunOnce: %v", err)
	}
	if summary.Run != 1 || summary.Aggregates != 2 || summary.Decisions != 2 || summary.Members != 3 {
		t.Fatalf("summary = %+v", summary)
	}
	if summary.ApplyErrors != 0 || summary.Skipped != 0 {
		t.Fatalf("summary reports failures: %+v", summary)
	}
	if !(summary.AssignedKWh > 0) {
		t.Fatalf("AssignedKWh = %v", summary.AssignedKWh)
	}

	for _, f := range []*flexoffer.FlexOffer{o1, o2, o3} {
		rec, ok := store.Get(f.ID)
		if !ok || rec.State != market.Assigned || rec.Assignment == nil {
			t.Fatalf("offer %s not assigned: %+v", f.ID, rec)
		}
		if len(rec.Assignment.Energies) != len(f.Profile) {
			t.Fatalf("offer %s assignment length %d", f.ID, len(rec.Assignment.Energies))
		}
		for i, e := range rec.Assignment.Energies {
			sl := f.Profile[i]
			if e < sl.MinEnergy || e > sl.MaxEnergy {
				t.Fatalf("offer %s slice %d energy %v outside [%v,%v]", f.ID, i, e, sl.MinEnergy, sl.MaxEnergy)
			}
		}
		if rec.Assignment.Start.Before(f.EarliestStart) || rec.Assignment.Start.After(f.LatestStart) {
			t.Fatalf("offer %s start %v outside window", f.ID, rec.Assignment.Start)
		}
	}
	if rec, _ := store.Get("o4"); rec.State != market.Offered {
		t.Fatalf("unaccepted offer was touched: %+v", rec)
	}

	// The assignment events fold back: the aggregator is empty again.
	if st := svc.AggStats(); st.Members != 0 {
		t.Fatalf("aggregator still holds %d members after assignment", st.Members)
	}
	status := svc.Status()
	if status.Runs != 1 || status.Decisions != 2 || status.ApplyErrors != 0 || status.LedgerErrors != 0 {
		t.Fatalf("status = %+v", status)
	}
	if status.LastRun == nil || status.LastRun.Run != 1 || len(status.History) != 1 {
		t.Fatalf("status history = %+v", status)
	}
}

func TestServiceLedgerRecovery(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ledger")
	clock := &svcClock{now: svcT0}

	store1 := market.NewShardedStore(2, clock.Now)
	acceptOffer(t, store1, svcOffer("lr1", svcT0.Add(2*time.Hour), time.Hour, 4, 0.5, 1.0))
	svc1 := newTestService(t, store1, clock, dir)
	if _, err := svc1.RunOnce(); err != nil {
		t.Fatalf("run 1: %v", err)
	}
	if _, err := svc1.RunOnce(); err != nil { // empty round
		t.Fatalf("run 2: %v", err)
	}
	before := svc1.Status()
	if err := svc1.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// A fresh process: new store, same ledger directory.
	store2 := market.NewShardedStore(2, clock.Now)
	svc2 := newTestService(t, store2, clock, dir)
	defer svc2.Close()
	after := svc2.Status()
	if after.Runs != 2 || after.Decisions != before.Decisions {
		t.Fatalf("recovered status = %+v, want runs 2, decisions %d", after, before.Decisions)
	}
	if after.Recovered.Records != before.Decisions+2 || after.Recovered.TornTail {
		t.Fatalf("recovered = %+v", after.Recovered)
	}
	if after.LastRun == nil || after.LastRun.Run != 2 || len(after.History) != 2 {
		t.Fatalf("recovered history = %+v", after)
	}

	// Round numbering continues across the restart.
	acceptOffer(t, store2, svcOffer("lr2", svcT0.Add(2*time.Hour), time.Hour, 4, 0.5, 1.0))
	summary, err := svc2.RunOnce()
	if err != nil {
		t.Fatalf("run 3: %v", err)
	}
	if summary.Run != 3 || summary.Decisions != 1 {
		t.Fatalf("post-recovery summary = %+v", summary)
	}
}

func TestServiceHTTP(t *testing.T) {
	clock := &svcClock{now: svcT0}
	store := market.NewShardedStore(2, clock.Now)
	acceptOffer(t, store, svcOffer("h1", svcT0.Add(2*time.Hour), time.Hour, 4, 0.5, 1.0))
	svc := newTestService(t, store, clock, "")
	defer svc.Close()
	h := svc.Handler()

	do := func(method, target string) *httptest.ResponseRecorder {
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest(method, target, nil))
		return rr
	}

	rr := do(http.MethodGet, "/aggregates")
	if rr.Code != http.StatusOK {
		t.Fatalf("GET /aggregates = %d: %s", rr.Code, rr.Body)
	}
	var aggResp struct {
		Aggregates []AggregateView `json:"aggregates"`
		Total      int             `json:"total"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &aggResp); err != nil {
		t.Fatalf("decode /aggregates: %v", err)
	}
	if aggResp.Total != 1 || len(aggResp.Aggregates) != 1 || aggResp.Aggregates[0].Members[0] != "h1" {
		t.Fatalf("aggregates body = %+v", aggResp)
	}
	if rr := do(http.MethodGet, "/aggregates?limit=0"); rr.Code != http.StatusOK {
		t.Fatalf("limit=0 = %d", rr.Code)
	}
	if rr := do(http.MethodGet, "/aggregates?limit=oops"); rr.Code != http.StatusBadRequest {
		t.Fatalf("bad limit = %d", rr.Code)
	}
	if rr := do(http.MethodPost, "/aggregates"); rr.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /aggregates = %d", rr.Code)
	}

	if rr := do(http.MethodPost, "/schedule"); rr.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /schedule = %d", rr.Code)
	}
	if rr := do(http.MethodGet, "/schedule/run"); rr.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /schedule/run = %d", rr.Code)
	}

	rr = do(http.MethodPost, "/schedule/run")
	if rr.Code != http.StatusOK {
		t.Fatalf("POST /schedule/run = %d: %s", rr.Code, rr.Body)
	}
	var summary RunSummary
	if err := json.Unmarshal(rr.Body.Bytes(), &summary); err != nil {
		t.Fatalf("decode run summary: %v", err)
	}
	if summary.Run != 1 || summary.Decisions != 1 {
		t.Fatalf("run summary = %+v", summary)
	}

	rr = do(http.MethodGet, "/schedule")
	if rr.Code != http.StatusOK {
		t.Fatalf("GET /schedule = %d", rr.Code)
	}
	var status Status
	if err := json.Unmarshal(rr.Body.Bytes(), &status); err != nil {
		t.Fatalf("decode status: %v", err)
	}
	if status.Runs != 1 || status.Decisions != 1 {
		t.Fatalf("status = %+v", status)
	}

	if rr := do(http.MethodGet, "/nope"); rr.Code != http.StatusNotFound {
		t.Fatalf("GET /nope = %d", rr.Code)
	}
}

func TestAlignUp(t *testing.T) {
	res := 15 * time.Minute
	cases := []struct {
		in, want time.Time
	}{
		{svcT0, svcT0},
		{svcT0.Add(time.Second), svcT0.Add(res)},
		{svcT0.Add(14 * time.Minute), svcT0.Add(res)},
		{svcT0.Add(res), svcT0.Add(res)},
	}
	for _, c := range cases {
		if got := alignUp(c.in, res); !got.Equal(c.want) {
			t.Errorf("alignUp(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestWindForecastSupplyAligned(t *testing.T) {
	supply := WindForecastSupply(res.DefaultWindModel(), res.DefaultTurbine(), 2, 7)
	start := svcT0.Add(5*time.Hour + 15*time.Minute)
	s, err := supply(start, 8, 15*time.Minute)
	if err != nil {
		t.Fatalf("supply: %v", err)
	}
	if s.Len() != 8 || !s.Start().Equal(start) || s.Resolution() != 15*time.Minute {
		t.Fatalf("supply series start %v len %d res %v", s.Start(), s.Len(), s.Resolution())
	}
	// Deterministic for a fixed seed.
	again, err := supply(start, 8, 15*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < s.Len(); i++ {
		if diff := s.Value(i) - again.Value(i); diff != 0 {
			t.Fatalf("supply not reproducible at %d: %v vs %v", i, s.Value(i), again.Value(i))
		}
	}
}
