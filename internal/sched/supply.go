package sched

import (
	"fmt"
	"time"

	"repro/internal/forecast"
	"repro/internal/res"
	"repro/internal/timeseries"
)

// SupplyFunc produces the supply series a scheduling round balances
// against: n intervals at the given resolution, starting exactly at start
// (which the service always places on the resolution grid). Implementations
// must return an aligned series of length n or an error.
type SupplyFunc func(start time.Time, n int, resolution time.Duration) (*timeseries.Series, error)

// WindForecastSupply builds the default supply source: a simulated wind
// farm (internal/res) provides trainDays of history ending at midnight of
// the horizon's day, a seasonal-naive model (internal/forecast, period one
// day) is fit on it, and the forecast is sliced to the requested horizon.
// The seed fixes the simulation, so a given (start, n, resolution) request
// is reproducible across runs and restarts.
func WindForecastSupply(model res.WindModel, turbine res.Turbine, trainDays int, seed int64) SupplyFunc {
	return func(start time.Time, n int, resolution time.Duration) (*timeseries.Series, error) {
		if trainDays <= 0 {
			return nil, fmt.Errorf("%w: %d training days", ErrInput, trainDays)
		}
		day0 := timeseries.TruncateDay(start)
		history, err := res.Simulate(model, turbine, day0.AddDate(0, 0, -trainDays), trainDays, resolution, seed)
		if err != nil {
			return nil, fmt.Errorf("sched: simulate supply history: %w", err)
		}
		period := int(24 * time.Hour / resolution)
		m := &forecast.SeasonalNaive{Period: period}
		if err := m.Fit(history); err != nil {
			return nil, fmt.Errorf("sched: fit supply model: %w", err)
		}
		lead := int(start.Sub(day0) / resolution)
		fc, err := m.Forecast(lead + n)
		if err != nil {
			return nil, fmt.Errorf("sched: forecast supply: %w", err)
		}
		return fc.Slice(lead, lead+n)
	}
}

// FlatSupply is a constant supply of kwhPerInterval — handy in tests and
// as a deterministic stand-in when no RES model is wanted.
func FlatSupply(kwhPerInterval float64) SupplyFunc {
	return func(start time.Time, n int, resolution time.Duration) (*timeseries.Series, error) {
		values := make([]float64, n)
		for i := range values {
			values[i] = kwhPerInterval
		}
		return timeseries.New(start, resolution, values)
	}
}
