package sched

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/market"
)

// FuzzScheduleQuery throws arbitrary methods, paths and query strings at
// the scheduling API and checks the contract the daemon relies on: the
// handler never panics and always answers with a well-formed status — 2xx
// for valid requests, 400/404/405 for malformed ones (503 is reserved for
// ledger failures, which cannot occur here: the service runs without a
// ledger).
func FuzzScheduleQuery(f *testing.F) {
	clock := &svcClock{now: svcT0}
	store := market.NewShardedStore(2, clock.Now)
	if err := store.Submit(svcOffer("fz1", svcT0.Add(2*time.Hour), time.Hour, 4, 0.5, 1.0)); err != nil {
		f.Fatal(err)
	}
	if err := store.Accept("fz1"); err != nil {
		f.Fatal(err)
	}
	svc, err := New(Config{
		Store:      store,
		Supply:     FlatSupply(5),
		Clock:      clock.Now,
		Horizon:    time.Hour,
		Resolution: 15 * time.Minute,
	})
	if err != nil {
		f.Fatal(err)
	}
	handler := svc.Handler()

	f.Add("GET", "/aggregates", "limit=3")
	f.Add("GET", "/aggregates", "limit=-1")
	f.Add("GET", "/aggregates", "limit=999999999999999999999")
	f.Add("GET", "/schedule", "")
	f.Add("POST", "/schedule/run", "")
	f.Add("DELETE", "/schedule", "x=1")
	f.Add("GET", "/schedule/run/extra", "")
	f.Add("PATCH", "/aggregates", "limit")

	f.Fuzz(func(t *testing.T, method, path, query string) {
		if !strings.HasPrefix(path, "/") {
			path = "/" + path
		}
		target := path
		if query != "" {
			target += "?" + query
		}
		req, err := http.NewRequest(method, "http://sched"+target, nil)
		if err != nil {
			return // unencodable method/target: not a reachable request
		}
		rr := httptest.NewRecorder()
		handler.ServeHTTP(rr, req)
		switch rr.Code {
		case http.StatusOK, http.StatusBadRequest, http.StatusNotFound, http.StatusMethodNotAllowed:
		case http.StatusMovedPermanently:
			return // ServeMux canonicalising a messy path; not an API answer
		default:
			t.Fatalf("%s %s -> unexpected status %d: %s", method, target, rr.Code, rr.Body)
		}
		if rr.Code != http.StatusOK {
			body := rr.Body.String()
			if !strings.Contains(body, "404 page not found") && !strings.Contains(body, `"error"`) {
				t.Fatalf("%s %s -> %d without error envelope: %q", method, target, rr.Code, body)
			}
		}
	})
}
