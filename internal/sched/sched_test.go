package sched

import (
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/flexoffer"
	"repro/internal/timeseries"
)

var t0 = time.Date(2012, 6, 4, 0, 0, 0, 0, time.UTC)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func offer(id string, est time.Time, tf time.Duration, n int, minE, maxE float64) *flexoffer.FlexOffer {
	return &flexoffer.FlexOffer{
		ID:            id,
		EarliestStart: est,
		LatestStart:   est.Add(tf),
		Profile:       flexoffer.UniformProfile(n, 15*time.Minute, minE, maxE),
	}
}

func series(vals []float64) *timeseries.Series {
	return timeseries.MustNew(t0, 15*time.Minute, vals)
}

func TestImbalance(t *testing.T) {
	demand := series([]float64{3, 1, 2})
	supply := series([]float64{1, 2, 2})
	m, err := Imbalance(demand, supply)
	if err != nil {
		t.Fatalf("Imbalance: %v", err)
	}
	if !almostEqual(m.UnmatchedDemand, 2, 1e-9) {
		t.Errorf("UnmatchedDemand = %v, want 2", m.UnmatchedDemand)
	}
	if !almostEqual(m.UnusedSupply, 1, 1e-9) {
		t.Errorf("UnusedSupply = %v, want 1", m.UnusedSupply)
	}
	if !almostEqual(m.RMSE, math.Sqrt(5.0/3), 1e-9) {
		t.Errorf("RMSE = %v", m.RMSE)
	}
	short := series([]float64{1})
	if _, err := Imbalance(demand, short); !errors.Is(err, ErrInput) {
		t.Errorf("misaligned: %v", err)
	}
}

// TestScheduleMovesOfferToSupply: surplus at hour 2; an offer with a
// flexible window covering it must land there.
func TestScheduleMovesOfferToSupply(t *testing.T) {
	n := 16 // 4 hours
	inflex := make([]float64, n)
	supply := make([]float64, n)
	for i := 8; i < 12; i++ { // hour 2..3
		supply[i] = 2
	}
	f := offer("a", t0, 3*time.Hour, 4, 0.5, 2)
	s := &Scheduler{}
	res, err := s.Schedule(flexoffer.Set{f}, series(inflex), series(supply))
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if len(res.Assignments) != 1 || len(res.Skipped) != 0 {
		t.Fatalf("assignments = %d, skipped = %d", len(res.Assignments), len(res.Skipped))
	}
	asg := res.Assignments[0]
	if !asg.Start.Equal(t0.Add(2 * time.Hour)) {
		t.Errorf("start = %v, want 02:00 (supply window)", asg.Start)
	}
	// Energies track supply up to slice max.
	for _, e := range asg.Energies {
		if !almostEqual(e, 2, 1e-9) {
			t.Errorf("energy = %v, want 2 (supply level)", e)
		}
	}
	// Demand series contains the placed energy.
	if !almostEqual(res.Demand.Total(), asg.TotalEnergy(), 1e-9) {
		t.Errorf("demand total = %v", res.Demand.Total())
	}
	m, _ := Imbalance(res.Demand, series(supply))
	if m.UnmatchedDemand > 1e-9 {
		t.Errorf("unmatched demand = %v, want 0", m.UnmatchedDemand)
	}
}

// TestScheduleBeatsEarliestBaseline: scheduling with flexibility yields
// lower unmatched demand than pinning offers at their earliest start.
func TestScheduleBeatsEarliestBaseline(t *testing.T) {
	n := 96
	inflex := make([]float64, n)
	supply := make([]float64, n)
	for i := range inflex {
		inflex[i] = 0.2
		// Wind blows at night (intervals 80..95).
		if i >= 80 {
			supply[i] = 1.5
		}
	}
	var offers flexoffer.Set
	for k := 0; k < 4; k++ {
		est := t0.Add(time.Duration(10+2*k) * time.Hour) // daytime ESTs
		offers = append(offers, offer(string(rune('a'+k)), est, 12*time.Hour, 4, 0.3, 1.0))
	}
	s := &Scheduler{}
	smart, err := s.Schedule(offers, series(inflex), series(supply))
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	naive, err := ScheduleAtEarliest(offers, series(inflex))
	if err != nil {
		t.Fatalf("ScheduleAtEarliest: %v", err)
	}
	ms, _ := Imbalance(smart.Demand, series(supply))
	mn, _ := Imbalance(naive.Demand, series(supply))
	if ms.UnmatchedDemand >= mn.UnmatchedDemand {
		t.Errorf("scheduled unmatched %v not below naive %v", ms.UnmatchedDemand, mn.UnmatchedDemand)
	}
}

// TestScheduleAssignmentsFeasible: all produced assignments validate.
func TestScheduleAssignmentsFeasible(t *testing.T) {
	n := 48
	inflex := make([]float64, n)
	supply := make([]float64, n)
	for i := range supply {
		supply[i] = float64(i%7) * 0.3
		inflex[i] = 0.1
	}
	var offers flexoffer.Set
	for k := 0; k < 6; k++ {
		offers = append(offers, offer(string(rune('a'+k)), t0.Add(time.Duration(k)*time.Hour), 4*time.Hour, 3, 0.2, 0.8))
	}
	res, err := (&Scheduler{Passes: 3}).Schedule(offers, series(inflex), series(supply))
	if err != nil {
		t.Fatal(err)
	}
	for _, asg := range res.Assignments {
		if err := asg.Validate(); err != nil {
			t.Errorf("assignment invalid: %v", err)
		}
	}
	if len(res.Assignments)+len(res.Skipped) != len(offers) {
		t.Error("offers lost")
	}
}

func TestScheduleSkipsUnschedulable(t *testing.T) {
	n := 8
	inflex := make([]float64, n)
	supply := make([]float64, n)
	offers := flexoffer.Set{
		offer("fits", t0, time.Hour, 2, 0.1, 0.2),
		offer("too-long", t0, time.Hour, 20, 0.1, 0.2),                 // profile longer than horizon
		offer("outside", t0.Add(24*time.Hour), time.Hour, 2, 0.1, 0.2), // EST beyond horizon
		offer("off-grid", t0.Add(7*time.Minute), time.Hour, 2, 0.1, 0.2),
	}
	hourly := &flexoffer.FlexOffer{
		ID: "wrong-slices", EarliestStart: t0, LatestStart: t0.Add(time.Hour),
		Profile: flexoffer.UniformProfile(2, time.Hour, 0.1, 0.2),
	}
	offers = append(offers, hourly)
	res, err := (&Scheduler{}).Schedule(offers, series(inflex), series(supply))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Assignments) != 1 {
		t.Errorf("assignments = %d, want 1", len(res.Assignments))
	}
	if len(res.Skipped) != 4 {
		t.Errorf("skipped = %d, want 4", len(res.Skipped))
	}
}

func TestScheduleErrors(t *testing.T) {
	s := &Scheduler{}
	good := series(make([]float64, 8))
	if _, err := s.Schedule(nil, nil, good); !errors.Is(err, ErrInput) {
		t.Errorf("nil inflexible: %v", err)
	}
	other := timeseries.MustNew(t0.Add(time.Hour), 15*time.Minute, make([]float64, 8))
	if _, err := s.Schedule(nil, good, other); !errors.Is(err, ErrInput) {
		t.Errorf("misaligned: %v", err)
	}
	bad := flexoffer.Set{{ID: "bad"}}
	if _, err := s.Schedule(bad, good, good.Clone()); err == nil {
		t.Error("invalid offer accepted")
	}
}

func TestScheduleAtEarliest(t *testing.T) {
	inflex := series(make([]float64, 16))
	offers := flexoffer.Set{offer("a", t0.Add(time.Hour), 2*time.Hour, 2, 1, 1)}
	res, err := ScheduleAtEarliest(offers, inflex)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Assignments) != 1 {
		t.Fatalf("assignments = %d", len(res.Assignments))
	}
	if !res.Assignments[0].Start.Equal(t0.Add(time.Hour)) {
		t.Errorf("start = %v", res.Assignments[0].Start)
	}
	if !almostEqual(res.Demand.Total(), 2, 1e-9) {
		t.Errorf("demand = %v", res.Demand.Total())
	}
}

func TestHorizon(t *testing.T) {
	s := series([]float64{1, 2, 3})
	h := Horizon(s)
	if h.Len() != 3 || h.Total() != 0 || !h.Start().Equal(s.Start()) {
		t.Errorf("Horizon = %v", h)
	}
}

// TestScheduleDeterministic: same inputs, same schedule.
func TestScheduleDeterministic(t *testing.T) {
	n := 48
	inflex := make([]float64, n)
	supply := make([]float64, n)
	for i := range supply {
		supply[i] = float64((i*7)%5) * 0.25
	}
	var offers flexoffer.Set
	for k := 0; k < 5; k++ {
		offers = append(offers, offer(string(rune('a'+k)), t0.Add(time.Duration(k)*time.Hour), 6*time.Hour, 4, 0.1, 0.9))
	}
	r1, err := (&Scheduler{}).Schedule(offers, series(inflex), series(supply))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := (&Scheduler{}).Schedule(offers, series(inflex), series(supply))
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Assignments) != len(r2.Assignments) {
		t.Fatal("assignment counts differ")
	}
	for i := range r1.Assignments {
		if !r1.Assignments[i].Start.Equal(r2.Assignments[i].Start) {
			t.Fatal("schedule not deterministic")
		}
	}
}

// TestScheduleRespectsTotalConstraint: an offer with a total-energy
// constraint is scheduled within it even when supply would fill every slice
// to its maximum.
func TestScheduleRespectsTotalConstraint(t *testing.T) {
	n := 16
	inflex := make([]float64, n)
	supply := make([]float64, n)
	for i := range supply {
		supply[i] = 10 // abundant supply → per-slice clamp hits maxima
	}
	f := offer("tec", t0, 2*time.Hour, 4, 1, 3)
	f.TotalConstraint = &flexoffer.EnergyConstraint{Min: 5, Max: 7}
	res, err := (&Scheduler{}).Schedule(flexoffer.Set{f}, series(inflex), series(supply))
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if len(res.Assignments) != 1 {
		t.Fatalf("assignments = %d (skipped %d)", len(res.Assignments), len(res.Skipped))
	}
	total := res.Assignments[0].TotalEnergy()
	if total < 5-1e-9 || total > 7+1e-9 {
		t.Errorf("scheduled total = %v, want within [5, 7]", total)
	}
	if err := res.Assignments[0].Validate(); err != nil {
		t.Errorf("assignment invalid: %v", err)
	}
}

func TestScheduleAtEarliestSkipsAndErrors(t *testing.T) {
	inflex := series(make([]float64, 8))
	// An offer with a total constraint whose averages violate it is still
	// scheduled via FitEnergies inside AssignDefault; an offer whose
	// default assignment is infeasible (empty effective bounds cannot be
	// built through Validate) — use one that assigns fine and one skipped
	// via unreachable earliest start handled by AddToSeries clipping.
	good := offer("g", t0, time.Hour, 2, 1, 1)
	res, err := ScheduleAtEarliest(flexoffer.Set{good}, inflex)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Assignments) != 1 || len(res.Skipped) != 0 {
		t.Fatalf("assignments/skipped = %d/%d", len(res.Assignments), len(res.Skipped))
	}
	// Nil and empty series errors.
	if _, err := ScheduleAtEarliest(nil, nil); !errors.Is(err, ErrInput) {
		t.Errorf("nil series: %v", err)
	}
	empty := timeseries.MustNew(t0, 15*time.Minute, nil)
	if _, err := ScheduleAtEarliest(nil, empty); !errors.Is(err, ErrInput) {
		t.Errorf("empty series: %v", err)
	}
	// Invalid offers rejected.
	bad := flexoffer.Set{{ID: "bad"}}
	if _, err := ScheduleAtEarliest(bad, inflex); err == nil {
		t.Error("invalid offer accepted")
	}
}
