package sched

import (
	"repro/internal/obs"
)

// ServiceMetrics holds the instruments a Service updates per round.
type ServiceMetrics struct {
	// RunSeconds observes each round's wall-clock duration.
	RunSeconds *obs.Histogram
}

// RegisterServiceMetrics registers the agg_* and sched_* metric families
// on reg, sourced from the service's counters; scrapes never drain the
// event stream, so they stay cheap under load.
func RegisterServiceMetrics(reg *obs.Registry, s *Service) *ServiceMetrics {
	reg.NewCounterFunc("agg_offers_joined_total", "Offers that joined an aggregate (accepted-offer events folded in).", func() uint64 {
		return s.inc.Stats().Joined
	})
	reg.NewCounterFunc("agg_offers_left_total", "Offers that left an aggregate (rejected, expired or assigned).", func() uint64 {
		return s.inc.Stats().Left
	})
	reg.NewCounterFunc("agg_rebuilds_total", "Aggregate bucket re-aggregations — the incremental work actually done.", func() uint64 {
		return s.inc.Stats().Rebuilds
	})
	reg.NewGaugeFunc("agg_groups", "Live aggregate grouping buckets.", func() float64 {
		return float64(s.inc.Stats().Groups)
	})
	reg.NewGaugeFunc("agg_members", "Offers currently aggregated.", func() float64 {
		return float64(s.inc.Stats().Members)
	})
	reg.NewCounterFunc("sched_runs_total", "Completed scheduling rounds, including rounds recovered from the ledger.", func() uint64 {
		runs, _, _, _, _, _ := s.counters()
		return runs
	})
	reg.NewCounterFunc("sched_decisions_total", "Journaled scheduling decisions (one per scheduled aggregate).", func() uint64 {
		_, decisions, _, _, _, _ := s.counters()
		return decisions
	})
	reg.NewCounterFunc("sched_apply_errors_total", "Member assignments the store rejected after the decision was journaled.", func() uint64 {
		_, _, applyErrs, _, _, _ := s.counters()
		return applyErrs
	})
	reg.NewCounterFunc("sched_ledger_errors_total", "Scheduling rounds aborted by a ledger append failure.", func() uint64 {
		_, _, _, ledgerErrs, _, _ := s.counters()
		return ledgerErrs
	})
	reg.NewCounterFunc("sched_events_dropped_total", "Store events that failed to fold into the aggregator.", func() uint64 {
		_, _, _, _, dropped, _ := s.counters()
		return dropped
	})
	reg.NewCounterFunc("sched_resyncs_total", "Lagged-subscription replay resyncs: bounded event-queue overflows recovered by rebuilding the aggregator.", func() uint64 {
		return s.resyncCount()
	})
	reg.NewGaugeFunc("sched_assigned_kwh_total", "Total energy scheduled across all rounds, in kWh.", func() float64 {
		_, _, _, _, _, kwh := s.counters()
		return kwh
	})
	m := &ServiceMetrics{
		RunSeconds: reg.NewHistogram("sched_run_seconds", "Scheduling round duration.", obs.DefBuckets),
	}
	s.mu.Lock()
	s.runSeconds = m.RunSeconds
	s.mu.Unlock()
	return m
}
