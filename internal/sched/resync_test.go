package sched

import (
	"fmt"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/market"
)

// TestServiceResyncEquivalence is the scheduler-side lag-recovery
// property: a service whose bounded event subscription overflows must,
// after its replay resync, hold exactly the aggregator state a fresh
// never-lagged service attached to the same store would build. The
// final write burst overflows the queue with no drain in between, so
// the comparison lands immediately after a resync — a pure replay fold
// on both sides, demanding bitwise equality.
func TestServiceResyncEquivalence(t *testing.T) {
	clock := &svcClock{now: svcT0}
	store := market.NewShardedStore(4, clock.Now)

	svc, err := New(Config{
		Store:          store,
		Supply:         FlatSupply(10),
		Clock:          clock.Now,
		Horizon:        6 * time.Hour,
		Resolution:     15 * time.Minute,
		LedgerDir:      filepath.Join(t.TempDir(), "bounded"),
		EventHighWater: 4,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer svc.Close()

	// First wave: overflow the 4-event bound, then drain via a read so
	// the first resync happens mid-script rather than at the end.
	for i := 0; i < 10; i++ {
		est := svcT0.Add(2*time.Hour + time.Duration(i%3)*15*time.Minute)
		acceptOffer(t, store, svcOffer(fmt.Sprintf("ra-%d", i), est, time.Hour, 4, 0.5, 1.0))
	}
	if _, err := svc.Aggregates(); err != nil {
		t.Fatalf("mid-script Aggregates: %v", err)
	}
	if svc.Status().Resyncs == 0 {
		t.Fatal("first wave did not overflow the high-water mark")
	}

	// Second wave: overflow again with no drain, so the next read folds
	// a fresh replay bootstrap and nothing else.
	for i := 0; i < 10; i++ {
		est := svcT0.Add(3*time.Hour + time.Duration(i%4)*15*time.Minute)
		acceptOffer(t, store, svcOffer(fmt.Sprintf("rb-%d", i), est, 30*time.Minute, 2, 1.0, 2.0))
	}
	got, err := svc.Aggregates()
	if err != nil {
		t.Fatalf("Aggregates: %v", err)
	}
	resyncs := svc.Status().Resyncs
	if resyncs < 2 {
		t.Fatalf("Resyncs = %d, want at least 2", resyncs)
	}

	// The reference: a fresh unbounded service attached now.
	ref, err := New(Config{
		Store:      store,
		Supply:     FlatSupply(10),
		Clock:      clock.Now,
		Horizon:    6 * time.Hour,
		Resolution: 15 * time.Minute,
		LedgerDir:  filepath.Join(t.TempDir(), "fresh"),
	})
	if err != nil {
		t.Fatalf("New ref: %v", err)
	}
	defer ref.Close()
	want, err := ref.Aggregates()
	if err != nil {
		t.Fatalf("ref Aggregates: %v", err)
	}
	if len(want) == 0 {
		t.Fatal("reference fold produced no aggregates; script broken")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("resynced aggregator diverges from never-lagged fold after %d resyncs:\ngot  %+v\nwant %+v",
			resyncs, got, want)
	}

	// The resynced service schedules from the recovered state without
	// error — lag recovery leaves a fully operational scheduler.
	summary, err := svc.RunOnce()
	if err != nil {
		t.Fatalf("RunOnce after resync: %v", err)
	}
	if summary.Members != 20 || summary.ApplyErrors != 0 {
		t.Fatalf("post-resync run = %+v, want all 20 members placed", summary)
	}
}
