package sched

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/agg"
	"repro/internal/flexoffer"
	"repro/internal/market"
	"repro/internal/obs"
	"repro/internal/res"
	"repro/internal/timeseries"
	"repro/internal/wal"
)

// ErrLedger wraps ledger append failures: the write-ahead contract held,
// so nothing the failed round would have decided was applied to the store.
var ErrLedger = errors.New("sched: ledger append failed")

// Config configures a scheduler Service.
type Config struct {
	// Store is the market store the service consumes events from and
	// applies assignments to. Required.
	Store *market.Store
	// Agg controls aggregate grouping; agg.DefaultParams() when zero.
	Agg agg.Params
	// Passes is the scheduler's re-insertion pass count (default 2).
	Passes int
	// Horizon is the scheduling horizon length (default 24 h).
	Horizon time.Duration
	// Resolution is the horizon grid and the slice duration conforming
	// offers share (default 15 min).
	Resolution time.Duration
	// Supply produces the supply series each round balances against;
	// WindForecastSupply with library defaults and SupplySeed when nil.
	Supply SupplyFunc
	// SupplySeed seeds the default supply simulation (ignored when
	// Supply is set).
	SupplySeed int64
	// Clock is the service clock (time.Now when nil); rounds schedule
	// the horizon starting at the clock reading aligned up to the grid.
	Clock func() time.Time
	// LedgerDir, when non-empty, persists every scheduling decision to a
	// write-ahead log in that directory; empty runs without durability.
	LedgerDir string
	// Policy is the ledger fsync policy (zero value: sync every append).
	Policy wal.SyncPolicy
	// SegmentBytes is the ledger segment rotation threshold.
	SegmentBytes int64
	// FS is the filesystem the ledger lives on (wal.DiskFS when nil);
	// the fault-injection seam.
	FS wal.FS
	// HistoryLimit bounds the retained recent-run window (default 64).
	HistoryLimit int
	// EventHighWater bounds the event-stream subscription queue; on
	// overflow the service discards its aggregator and resyncs from a
	// fresh replay instead of growing memory without limit. 0 leaves the
	// queue unbounded.
	EventHighWater int
	// Logger receives service lifecycle logs; may be nil.
	Logger *obs.Logger
}

// Service runs online aggregation and scheduling against a market store:
// it subscribes to the store's event stream so accepted offers join (and
// departing offers leave) an incremental aggregator, and each scheduling
// round assigns the current aggregates against a supply forecast,
// journaling every decision write-ahead before disaggregated member
// assignments are applied back to the store.
//
// The service has no background goroutine of its own: the event stream is
// drained synchronously at the start of every round and query, and rounds
// are driven either by RunPeriodically or by POST /schedule/run. All
// methods are safe for concurrent use.
type Service struct {
	cfg    Config
	sched  Scheduler
	inc    *agg.Incremental
	sub    *market.Subscription
	ledger *wal.Log // nil when running without durability

	// runMu serialises scheduling rounds (and ledger appends with them).
	runMu sync.Mutex

	mu          sync.Mutex
	runs        uint64         // guarded by mu: rounds completed, lifetime across restarts
	decisions   uint64         // guarded by mu: decisions journaled+applied, lifetime
	assignedKWh float64        // guarded by mu: total scheduled energy, lifetime
	applyErrs   uint64         // guarded by mu: member assignments the store rejected
	ledgerErrs  uint64         // guarded by mu: ledger append failures
	dropped     uint64         // guarded by mu: events that failed to fold into the aggregator
	resyncs     uint64         // guarded by mu: lagged-subscription replay resyncs
	lastRun     *RunSummary    // guarded by mu
	history     []RunSummary   // guarded by mu: recent runs, newest last
	recovered   RecoveryInfo   // guarded by mu: what ledger replay restored
	runSeconds  *obs.Histogram // guarded by mu: round-duration instrument, nil until registered
}

// RecoveryInfo reports what the service restored from its ledger at start.
type RecoveryInfo struct {
	// Records is the number of valid ledger records replayed.
	Records uint64 `json:"records"`
	// Runs is the last completed round number found in the ledger.
	Runs uint64 `json:"runs"`
	// Decisions is the number of decision records replayed.
	Decisions uint64 `json:"decisions"`
	// TornTail reports whether the ledger lost a torn final record.
	TornTail bool `json:"torn_tail"`
}

// New builds a Service: it opens and replays the decision ledger (when
// configured), then attaches to the store's event stream with a replay
// bootstrap, so the aggregator converges on the store's current accepted
// population without rescanning it.
func New(cfg Config) (*Service, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("%w: nil store", ErrInput)
	}
	if cfg.Agg == (agg.Params{}) {
		cfg.Agg = agg.DefaultParams()
	}
	if cfg.Horizon <= 0 {
		cfg.Horizon = 24 * time.Hour
	}
	if cfg.Resolution <= 0 {
		cfg.Resolution = 15 * time.Minute
	}
	if cfg.Horizon%cfg.Resolution != 0 {
		return nil, fmt.Errorf("%w: horizon %v not a multiple of resolution %v", ErrInput, cfg.Horizon, cfg.Resolution)
	}
	if cfg.Supply == nil {
		cfg.Supply = WindForecastSupply(res.DefaultWindModel(), res.DefaultTurbine(), 3, cfg.SupplySeed)
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	if cfg.HistoryLimit <= 0 {
		cfg.HistoryLimit = 64
	}
	inc, err := agg.NewIncremental(cfg.Agg, cfg.Resolution)
	if err != nil {
		return nil, err
	}
	s := &Service{
		cfg:   cfg,
		sched: Scheduler{Passes: cfg.Passes},
		inc:   inc,
	}
	if cfg.LedgerDir != "" {
		ledger, info, err := wal.Open(wal.Options{
			Dir:          cfg.LedgerDir,
			SegmentBytes: cfg.SegmentBytes,
			Policy:       cfg.Policy,
			FS:           cfg.FS,
		})
		if err != nil {
			return nil, fmt.Errorf("sched: open ledger: %w", err)
		}
		st, err := replayLedger(ledger, cfg.HistoryLimit)
		if err != nil {
			ledger.Close()
			return nil, err
		}
		s.ledger = ledger
		// The service is not shared yet, but taking the lock keeps the
		// guarded-field discipline uniform (and costs nothing uncontended).
		s.mu.Lock()
		s.runs = st.runs
		s.decisions = st.decisions
		s.assignedKWh = st.assignedKWh
		s.history = st.history
		s.lastRun = st.lastRun
		s.recovered = RecoveryInfo{
			Records:   info.Records,
			Runs:      st.runs,
			Decisions: st.decisions,
			TornTail:  info.TornTail,
		}
		s.mu.Unlock()
		cfg.Logger.Info("scheduler ledger recovered",
			"records", info.Records, "runs", st.runs, "decisions", st.decisions, "torn_tail", info.TornTail)
	}
	s.sub = cfg.Store.SubscribeReplay(market.WithHighWater(cfg.EventHighWater))
	return s, nil
}

// Close detaches from the event stream and closes the ledger.
func (s *Service) Close() error {
	s.sub.Close()
	if s.ledger != nil {
		return s.ledger.Close()
	}
	return nil
}

// drain folds every pending store event into the aggregator: accepted
// offers join, offers leaving the accepted state (rejected, expired,
// assigned) leave. Submitted events are ignored — only accepted offers
// are scheduled — and replay events fold exactly like live ones. When the
// bounded subscription lagged (EventHighWater overflow), the partial fold
// is discarded and rebuilt from a fresh replay: the replay bootstrap
// bypasses the bound, so after folding it the aggregator again equals the
// never-lagged fold of the store. Callers hold runMu, which serialises
// drains with the subscription swap.
func (s *Service) drain() {
	for {
		for {
			ev, ok := s.sub.TryNext()
			if !ok {
				break
			}
			switch ev.Kind {
			case market.EventAccepted:
				if err := s.inc.Add(ev.Offer); err != nil {
					s.mu.Lock()
					s.dropped++
					s.mu.Unlock()
					s.cfg.Logger.Warn("aggregator rejected offer", "id", ev.Offer.ID, "err", err)
				}
			case market.EventRejected, market.EventExpired, market.EventAssigned:
				s.inc.Remove(ev.Offer.ID)
			}
		}
		if !s.sub.Lagged() || s.sub.Closed() {
			return
		}
		s.resync()
	}
}

// resync discards the aggregator state and reattaches with a fresh replay
// bootstrap after the event subscription lagged. The caller (drain) holds
// runMu and loops again afterwards, folding the bootstrap — and any live
// events behind it — before returning.
func (s *Service) resync() {
	dropped := s.sub.Dropped()
	s.sub.Close()
	inc, err := agg.NewIncremental(s.cfg.Agg, s.cfg.Resolution)
	if err != nil {
		// Unreachable: New validated the same parameters. Keep the stale
		// aggregator rather than crash a running daemon.
		s.cfg.Logger.Error("resync aggregator rebuild failed", "err", err)
		return
	}
	s.inc = inc
	s.sub = s.cfg.Store.SubscribeReplay(market.WithHighWater(s.cfg.EventHighWater))
	s.mu.Lock()
	s.resyncs++
	n := s.resyncs
	s.mu.Unlock()
	s.cfg.Logger.Warn("event stream lagged; resynced via replay",
		"resyncs", n, "dropped_deliveries", dropped, "bootstrap_events", s.sub.Pending(),
		"high_water", s.cfg.EventHighWater)
}

// Aggregates drains pending events and returns the current aggregation.
func (s *Service) Aggregates() ([]*agg.Aggregate, error) {
	s.runMu.Lock()
	defer s.runMu.Unlock()
	s.drain()
	return s.inc.Aggregates()
}

// AggStats drains pending events and snapshots the aggregator counters.
func (s *Service) AggStats() agg.IncrementalStats {
	s.runMu.Lock()
	defer s.runMu.Unlock()
	s.drain()
	return s.inc.Stats()
}

// journalDecision appends one decision record to the write-ahead ledger.
// It no-ops when the service runs without durability, so the write-ahead
// order is unconditional at the call site: a decision is either durable or
// durability is off, never silently skipped — which is what lets the
// journalcheck analyzer prove every store mutation sits behind it.
func (s *Service) journalDecision(dec *Decision) error {
	if s.ledger == nil {
		return nil
	}
	return appendRecord(s.ledger, ledgerRecord{Kind: recordDecision, Decision: dec})
}

// journalRun appends the round-summary record to the write-ahead ledger,
// no-oping without one (see journalDecision).
func (s *Service) journalRun(run *RunSummary) error {
	if s.ledger == nil {
		return nil
	}
	return appendRecord(s.ledger, ledgerRecord{Kind: recordRun, Run: run})
}

// alignUp rounds t up to the next resolution-grid point (identity when t
// is already on the grid).
func alignUp(t time.Time, resolution time.Duration) time.Time {
	aligned := t.Truncate(resolution)
	if aligned.Before(t) {
		aligned = aligned.Add(resolution)
	}
	return aligned
}

// RunOnce executes one scheduling round: drain events, aggregate, forecast
// supply over the horizon starting at the next grid point, schedule the
// aggregates, and for each scheduled aggregate journal the disaggregated
// decision write-ahead before applying the member assignments to the
// store. A ledger failure aborts the round with ErrLedger before anything
// was applied; store-side apply failures (an offer expired between drain
// and apply) are counted, not fatal.
func (s *Service) RunOnce() (RunSummary, error) {
	s.runMu.Lock()
	defer s.runMu.Unlock()
	began := time.Now()
	s.drain()

	now := s.cfg.Clock()
	start := alignUp(now, s.cfg.Resolution)
	n := int(s.cfg.Horizon / s.cfg.Resolution)

	aggs, err := s.inc.Aggregates()
	if err != nil {
		return RunSummary{}, err
	}
	supply, err := s.cfg.Supply(start, n, s.cfg.Resolution)
	if err != nil {
		return RunSummary{}, err
	}
	inflexible, err := timeseries.Zeros(start, s.cfg.Resolution, n)
	if err != nil {
		return RunSummary{}, err
	}

	offers := make(flexoffer.Set, 0, len(aggs))
	byID := make(map[string]*agg.Aggregate, len(aggs))
	for _, a := range aggs {
		offers = append(offers, a.Offer)
		byID[a.Offer.ID] = a
	}
	result, err := s.sched.Schedule(offers, inflexible, supply)
	if err != nil {
		return RunSummary{}, err
	}
	imbalance, err := Imbalance(result.Demand, supply)
	if err != nil {
		return RunSummary{}, err
	}

	s.mu.Lock()
	run := s.runs + 1
	s.mu.Unlock()

	summary := RunSummary{
		Run:          run,
		At:           now,
		HorizonStart: start,
		Aggregates:   len(aggs),
		Skipped:      len(result.Skipped),
		Imbalance:    imbalance,
	}
	for _, asg := range result.Assignments {
		a := byID[asg.Offer.ID]
		members, err := a.Disaggregate(asg)
		if err != nil {
			// Cannot happen for aggregates built by the service; treat a
			// violation as an apply error and keep the round going.
			summary.ApplyErrors++
			s.cfg.Logger.Warn("disaggregate failed", "aggregate", asg.Offer.ID, "err", err)
			continue
		}
		dec := Decision{
			Run:         run,
			AggregateID: asg.Offer.ID,
			At:          now,
			Start:       asg.Start,
			Energies:    asg.Energies,
			Members:     make([]MemberAssignment, len(members)),
		}
		for i, m := range members {
			dec.Members[i] = MemberAssignment{ID: m.Offer.ID, Start: m.Start, Energies: m.Energies}
		}
		if err := s.journalDecision(&dec); err != nil {
			s.mu.Lock()
			s.ledgerErrs++
			s.mu.Unlock()
			return summary, fmt.Errorf("%w: %v", ErrLedger, err)
		}
		applied := 0
		for _, m := range dec.Members {
			if _, err := s.cfg.Store.Assign(m.ID, m.Start, m.Energies); err != nil {
				summary.ApplyErrors++
				s.cfg.Logger.Debug("assignment apply failed", "offer", m.ID, "err", err)
				continue
			}
			applied++
		}
		summary.Decisions++
		summary.Members += applied
		summary.AssignedKWh += dec.AssignedKWh()
	}
	summary.DurationSeconds = time.Since(began).Seconds()

	if err := s.journalRun(&summary); err != nil {
		s.mu.Lock()
		s.ledgerErrs++
		s.mu.Unlock()
		return summary, fmt.Errorf("%w: %v", ErrLedger, err)
	}

	s.mu.Lock()
	s.runs = run
	s.decisions += uint64(summary.Decisions)
	s.assignedKWh += summary.AssignedKWh
	s.applyErrs += uint64(summary.ApplyErrors)
	cp := summary
	s.lastRun = &cp
	s.history = append(s.history, summary)
	if len(s.history) > s.cfg.HistoryLimit {
		s.history = s.history[len(s.history)-s.cfg.HistoryLimit:]
	}
	hist := s.runSeconds
	s.mu.Unlock()
	if hist != nil {
		hist.Observe(summary.DurationSeconds)
	}

	s.cfg.Logger.Info("scheduling round complete",
		"run", run, "aggregates", summary.Aggregates, "decisions", summary.Decisions,
		"members", summary.Members, "assigned_kwh", summary.AssignedKWh,
		"skipped", summary.Skipped, "apply_errors", summary.ApplyErrors)
	return summary, nil
}

// RunPeriodically blocks, executing a round every interval until the
// context is cancelled. Errors are logged and the loop keeps going — a
// failed round leaves the store untouched and the next tick retries.
func (s *Service) RunPeriodically(ctx context.Context, every time.Duration) {
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			if _, err := s.RunOnce(); err != nil {
				s.cfg.Logger.Warn("scheduling round failed", "err", err)
			}
		}
	}
}

// Status is the service's point-in-time summary, served on GET /schedule.
type Status struct {
	// Runs is the number of completed rounds, including recovered ones.
	Runs uint64 `json:"runs"`
	// Decisions is the lifetime decision count.
	Decisions uint64 `json:"decisions"`
	// AssignedKWh is the lifetime scheduled energy.
	AssignedKWh float64 `json:"assigned_kwh"`
	// ApplyErrors and LedgerErrors are lifetime failure counters.
	ApplyErrors  uint64 `json:"apply_errors"`
	LedgerErrors uint64 `json:"ledger_errors"`
	// Resyncs counts lagged-subscription replay resyncs: how often the
	// bounded event queue overflowed and the aggregator was rebuilt.
	Resyncs uint64 `json:"resyncs"`
	// Aggregator snapshots the incremental aggregator.
	Aggregator agg.IncrementalStats `json:"aggregator"`
	// LastRun is the most recent round, nil before the first.
	LastRun *RunSummary `json:"last_run,omitempty"`
	// History lists recent rounds, oldest first.
	History []RunSummary `json:"history,omitempty"`
	// Recovered reports what ledger replay restored at start.
	Recovered RecoveryInfo `json:"recovered"`
}

// Status drains pending events and snapshots the service counters.
func (s *Service) Status() Status {
	s.runMu.Lock()
	s.drain()
	aggStats := s.inc.Stats()
	s.runMu.Unlock()

	s.mu.Lock()
	defer s.mu.Unlock()
	st := Status{
		Runs:         s.runs,
		Decisions:    s.decisions,
		AssignedKWh:  s.assignedKWh,
		ApplyErrors:  s.applyErrs,
		LedgerErrors: s.ledgerErrs,
		Resyncs:      s.resyncs,
		Aggregator:   aggStats,
		Recovered:    s.recovered,
	}
	if s.lastRun != nil {
		cp := *s.lastRun
		st.LastRun = &cp
	}
	st.History = append([]RunSummary(nil), s.history...)
	return st
}

// counters returns lifetime counters for metric callbacks without
// draining the event stream (metric scrapes must stay cheap).
func (s *Service) counters() (runs, decisions, applyErrs, ledgerErrs, dropped uint64, assignedKWh float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.runs, s.decisions, s.applyErrs, s.ledgerErrs, s.dropped, s.assignedKWh
}

// resyncCount returns the lifetime lagged-resync counter for the metric
// callback.
func (s *Service) resyncCount() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.resyncs
}
