package sched

import (
	"errors"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/market"
	"repro/internal/wal"
)

// runOnceRecover executes one round, converting an injected panic (a torn
// ledger write) into a flag instead of killing the test binary.
func runOnceRecover(svc *Service) (summary RunSummary, err error, panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			panicked = true
		}
	}()
	summary, err = svc.RunOnce()
	return
}

// TestCrashSchedulerLedger drives scheduling rounds over a ledger on a
// faulty disk until an injected fault kills the run, then recovers from a
// clean disk and checks the ledger invariant: every acknowledged decision
// is recovered, and at most one unacknowledged decision (durable before
// the crash hit, but never acked) may appear on top —
// acked ⊆ recovered ⊆ acked+1. The service guarantees at most one
// decision per round here because every applied assignment leaves the
// aggregator before the next round.
func TestCrashSchedulerLedger(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			profile := faultinject.Profile{
				Seed:        seed,
				ErrorRate:   0.10,
				PartialRate: 0.10,
				PanicRate:   0.05,
			}
			fs := faultinject.WrapFS(wal.DiskFS, faultinject.NewSchedule(profile))
			dir := filepath.Join(t.TempDir(), "ledger")
			clock := &svcClock{now: svcT0}
			store := market.NewShardedStore(2, clock.Now)

			acked := 0
			svc, err := New(Config{
				Store:      store,
				Supply:     FlatSupply(10),
				Clock:      clock.Now,
				Horizon:    6 * time.Hour,
				Resolution: 15 * time.Minute,
				LedgerDir:  dir,
				FS:         fs,
			})
			if err == nil {
				// The service is abandoned on crash (no Close): a crash
				// does not run destructors.
				for round := 0; round < 30; round++ {
					f := svcOffer(fmt.Sprintf("c%d-%d", seed, round), svcT0.Add(2*time.Hour), time.Hour, 4, 0.5, 1.0)
					acceptOffer(t, store, f)
					summary, err, panicked := runOnceRecover(svc)
					if panicked {
						break
					}
					if err != nil {
						if !errors.Is(err, ErrLedger) {
							t.Fatalf("round %d failed outside the ledger: %v", round, err)
						}
						acked += summary.Decisions
						break
					}
					acked += summary.Decisions
				}
			}

			// "Reboot": recover the ledger from a clean disk.
			clean, err := New(Config{
				Store:      market.NewShardedStore(2, clock.Now),
				Supply:     FlatSupply(10),
				Clock:      clock.Now,
				Horizon:    6 * time.Hour,
				Resolution: 15 * time.Minute,
				LedgerDir:  dir,
			})
			if err != nil {
				t.Fatalf("recovery open failed: %v", err)
			}
			defer clean.Close()
			recovered := clean.Status().Recovered
			if recovered.Decisions < uint64(acked) || recovered.Decisions > uint64(acked)+1 {
				t.Fatalf("recovered %d decisions, acked %d: want acked <= recovered <= acked+1",
					recovered.Decisions, acked)
			}
		})
	}
}
