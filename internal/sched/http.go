package sched

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"time"

	"repro/internal/agg"
)

// AggregateView is the JSON shape of one aggregate on GET /aggregates.
type AggregateView struct {
	// ID is the deterministic aggregate ID.
	ID string `json:"id"`
	// EarliestStart and LatestStart bound the aggregate's start window.
	EarliestStart time.Time `json:"earliest_start"`
	LatestStart   time.Time `json:"latest_start"`
	// Slices is the aggregated profile length.
	Slices int `json:"slices"`
	// MinKWh and MaxKWh bound the aggregate's total energy.
	MinKWh float64 `json:"min_kwh"`
	MaxKWh float64 `json:"max_kwh"`
	// Members lists the member offer IDs.
	Members []string `json:"members"`
}

// viewOf renders one aggregate.
func viewOf(a *agg.Aggregate) AggregateView {
	v := AggregateView{
		ID:            a.Offer.ID,
		EarliestStart: a.Offer.EarliestStart,
		LatestStart:   a.Offer.LatestStart,
		Slices:        len(a.Offer.Profile),
		MinKWh:        a.Offer.TotalMinEnergy(),
		MaxKWh:        a.Offer.TotalMaxEnergy(),
		Members:       make([]string, len(a.Members)),
	}
	for i, f := range a.Members {
		v.Members[i] = f.ID
	}
	return v
}

// Handler serves the scheduling API:
//
//	GET  /aggregates    current aggregation (?limit= caps the list)
//	GET  /schedule      service status: counters, last run, history
//	POST /schedule/run  execute one scheduling round now
//
// Mount it beside the market server; the daemon's observability middleware
// wraps both.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/aggregates", s.handleAggregates)
	mux.HandleFunc("/schedule", s.handleSchedule)
	mux.HandleFunc("/schedule/run", s.handleScheduleRun)
	return mux
}

func (s *Service) handleAggregates(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		schedError(w, http.StatusMethodNotAllowed, "method not allowed")
		return
	}
	limit := -1
	if raw := r.URL.Query().Get("limit"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 0 {
			schedError(w, http.StatusBadRequest, "limit must be a non-negative integer")
			return
		}
		limit = n
	}
	aggs, err := s.Aggregates()
	if err != nil {
		schedError(w, http.StatusInternalServerError, err.Error())
		return
	}
	views := make([]AggregateView, 0, len(aggs))
	for _, a := range aggs {
		if limit >= 0 && len(views) == limit {
			break
		}
		views = append(views, viewOf(a))
	}
	schedJSON(w, http.StatusOK, struct {
		Aggregates []AggregateView      `json:"aggregates"`
		Total      int                  `json:"total"`
		Stats      agg.IncrementalStats `json:"stats"`
	}{Aggregates: views, Total: len(aggs), Stats: s.inc.Stats()})
}

func (s *Service) handleSchedule(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		schedError(w, http.StatusMethodNotAllowed, "method not allowed")
		return
	}
	schedJSON(w, http.StatusOK, s.Status())
}

func (s *Service) handleScheduleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		schedError(w, http.StatusMethodNotAllowed, "method not allowed")
		return
	}
	summary, err := s.RunOnce()
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, ErrLedger) {
			status = http.StatusServiceUnavailable
		}
		schedError(w, status, err.Error())
		return
	}
	schedJSON(w, http.StatusOK, summary)
}

// schedJSON writes a JSON response.
func schedJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// schedError writes the API's JSON error envelope.
func schedError(w http.ResponseWriter, status int, msg string) {
	schedJSON(w, status, struct {
		Error string `json:"error"`
	}{Error: msg})
}
