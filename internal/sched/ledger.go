package sched

import (
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/wal"
)

// Ledger record kinds. Each scheduling round journals one Decision record
// per scheduled aggregate (write-ahead: before any member assignment is
// applied to the store) and one RunSummary record after the round. The
// ledger is the scheduler's durable history: on restart the service
// replays it to restore run/decision counters and the recent-run window,
// while the offers' assignment state recovers independently from the
// market store's own WAL.
const (
	recordDecision = "decision"
	recordRun      = "run"
)

// MemberAssignment is one member offer's share of a scheduled aggregate,
// as journaled in a Decision — self-contained, so the ledger can be
// audited without reconstructing the aggregate.
type MemberAssignment struct {
	// ID is the member offer's ID.
	ID string `json:"id"`
	// Start is the member's assigned start time.
	Start time.Time `json:"start"`
	// Energies is the member's assigned per-slice energy vector, in kWh.
	Energies []float64 `json:"energies_kwh"`
}

// Decision is one journaled scheduling decision: the assignment of one
// aggregate, already disaggregated into per-member assignments.
type Decision struct {
	// Run is the scheduling round that took the decision.
	Run uint64 `json:"run"`
	// AggregateID names the aggregate the decision schedules.
	AggregateID string `json:"aggregate_id"`
	// At is the service-clock time the decision was taken.
	At time.Time `json:"at"`
	// Start is the aggregate's assigned start.
	Start time.Time `json:"start"`
	// Energies is the aggregate's assigned per-slice energy vector.
	Energies []float64 `json:"energies_kwh"`
	// Members are the disaggregated per-offer assignments.
	Members []MemberAssignment `json:"members"`
}

// AssignedKWh sums the decision's aggregate energy vector.
func (d *Decision) AssignedKWh() float64 {
	var total float64
	for _, e := range d.Energies {
		total += e
	}
	return total
}

// RunSummary is the journaled outcome of one scheduling round.
type RunSummary struct {
	// Run numbers the round, monotonically across restarts.
	Run uint64 `json:"run"`
	// At is the service-clock time the round started.
	At time.Time `json:"at"`
	// HorizonStart is the first interval of the scheduling horizon.
	HorizonStart time.Time `json:"horizon_start"`
	// Aggregates is the number of aggregates offered to the scheduler.
	Aggregates int `json:"aggregates"`
	// Decisions is the number of aggregates that received a schedule.
	Decisions int `json:"decisions"`
	// Members is the number of member offers covered by the decisions.
	Members int `json:"members"`
	// AssignedKWh is the total energy scheduled this round.
	AssignedKWh float64 `json:"assigned_kwh"`
	// Skipped is the number of aggregates the scheduler could not place
	// inside the horizon.
	Skipped int `json:"skipped"`
	// ApplyErrors counts member assignments the store rejected (offer
	// already assigned or expired between drain and apply).
	ApplyErrors int `json:"apply_errors"`
	// Imbalance quantifies how well the scheduled demand tracks supply.
	Imbalance Metrics `json:"imbalance"`
	// DurationSeconds is the round's wall-clock duration.
	DurationSeconds float64 `json:"duration_seconds"`
}

// ledgerRecord is the WAL payload envelope: exactly one of the pointers is
// set, selected by Kind.
type ledgerRecord struct {
	Kind     string      `json:"kind"`
	Decision *Decision   `json:"decision,omitempty"`
	Run      *RunSummary `json:"run,omitempty"`
}

// appendRecord journals one record through the ledger, honouring the
// write-ahead contract: callers act on the record only on nil return.
func appendRecord(ledger *wal.Log, rec ledgerRecord) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("sched: encode ledger record: %w", err)
	}
	if _, err := ledger.Append(payload); err != nil {
		return fmt.Errorf("sched: append ledger record: %w", err)
	}
	return nil
}

// replayState is what ledger replay recovers.
type replayState struct {
	runs        uint64
	decisions   uint64
	assignedKWh float64
	history     []RunSummary
	lastRun     *RunSummary
}

// replayLedger folds every valid ledger record into counters and the
// recent-run window. Undecodable payloads abort the replay: the WAL layer
// already discards torn tails, so a record that frames correctly but does
// not parse means corruption, not a crash.
func replayLedger(ledger *wal.Log, historyLimit int) (replayState, error) {
	var st replayState
	err := ledger.ReplayFrom(0, func(lsn uint64, payload []byte) error {
		var rec ledgerRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			return fmt.Errorf("sched: ledger record %d: %w", lsn, err)
		}
		switch rec.Kind {
		case recordDecision:
			if rec.Decision == nil {
				return fmt.Errorf("sched: ledger record %d: decision without body", lsn)
			}
			st.decisions++
			st.assignedKWh += rec.Decision.AssignedKWh()
			if rec.Decision.Run > st.runs {
				st.runs = rec.Decision.Run
			}
		case recordRun:
			if rec.Run == nil {
				return fmt.Errorf("sched: ledger record %d: run without body", lsn)
			}
			if rec.Run.Run > st.runs {
				st.runs = rec.Run.Run
			}
			r := *rec.Run
			st.lastRun = &r
			st.history = append(st.history, r)
			if len(st.history) > historyLimit {
				st.history = st.history[len(st.history)-historyLimit:]
			}
		default:
			return fmt.Errorf("sched: ledger record %d: unknown kind %q", lsn, rec.Kind)
		}
		return nil
	})
	return st, err
}
