// Package num holds the floating-point tolerance helpers the numeric
// packages share. Energy values in this codebase are sums and pro-rata
// splits of kWh readings (subtractProportional, aggregation, assignment
// feasibility), so exact == / != comparison is almost always a latent bug:
// two quantities that are equal on paper differ by rounding error in
// practice. The flexvet floatcmp analyzer rejects exact comparisons in the
// numeric packages and points here.
//
// All helpers treat NaN as unequal to everything, including itself — a NaN
// energy must never be mistaken for a legitimate zero.
package num

import "math"

// DefaultTol is the absolute tolerance the helpers use by default: far
// below any meaningful energy amount (1e-9 kWh is a microjoule-scale
// quantity) yet far above the rounding error of kWh-scale arithmetic.
const DefaultTol = 1e-9

// Eq reports whether a and b are equal within DefaultTol.
func Eq(a, b float64) bool { return EqTol(a, b, DefaultTol) }

// EqTol reports whether a and b are equal within the absolute tolerance
// tol. NaN is equal to nothing; infinities are equal only to themselves.
func EqTol(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	//lint:ignore floatcmp the exact-hit shortcut is part of the tolerance helper itself
	if a == b { // handles infinities and exact hits without overflow
		return true
	}
	return math.Abs(a-b) <= tol
}

// Zero reports whether v is zero within DefaultTol.
func Zero(v float64) bool { return EqTol(v, 0, DefaultTol) }

// Within reports whether v lies in the closed interval [lo, hi], widened
// by tol on both ends — the standard feasibility check for energy bounds
// (assignment energies against slice bounds, run energies against
// envelopes).
func Within(v, lo, hi, tol float64) bool {
	if math.IsNaN(v) || math.IsNaN(lo) || math.IsNaN(hi) {
		return false
	}
	return v >= lo-tol && v <= hi+tol
}
