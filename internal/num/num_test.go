package num

import (
	"math"
	"testing"
)

func TestEq(t *testing.T) {
	cases := []struct {
		a, b float64
		want bool
	}{
		{1, 1, true},
		{1, 1 + 1e-12, true},
		{1, 1 + 1e-6, false},
		{0, 0, true},
		{0, 1e-10, true},
		{0, 2e-9, false},
		{math.NaN(), math.NaN(), false},
		{math.NaN(), 0, false},
		{math.Inf(1), math.Inf(1), true},
		{math.Inf(1), math.Inf(-1), false},
		{math.Inf(1), math.MaxFloat64, false},
	}
	for _, c := range cases {
		if got := Eq(c.a, c.b); got != c.want {
			t.Errorf("Eq(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestEqTolNoOverflow(t *testing.T) {
	// |a-b| overflows float64; EqTol must still answer false, not panic or
	// return a garbage comparison against +Inf.
	if EqTol(math.MaxFloat64, -math.MaxFloat64, 1) {
		t.Error("EqTol(MaxFloat64, -MaxFloat64) = true")
	}
}

func TestZero(t *testing.T) {
	if !Zero(0) || !Zero(1e-12) || !Zero(-1e-12) {
		t.Error("Zero rejects values inside the tolerance")
	}
	if Zero(1e-6) || Zero(math.NaN()) {
		t.Error("Zero accepts a non-zero or NaN value")
	}
}

func TestWithin(t *testing.T) {
	cases := []struct {
		v, lo, hi, tol float64
		want           bool
	}{
		{5, 0, 10, 0, true},
		{0, 0, 10, 0, true},
		{10, 0, 10, 0, true},
		{-1e-12, 0, 10, 1e-9, true},
		{10 + 1e-12, 0, 10, 1e-9, true},
		{-1e-6, 0, 10, 1e-9, false},
		{11, 0, 10, 1e-9, false},
		{math.NaN(), 0, 10, 1e-9, false},
		{5, math.NaN(), 10, 1e-9, false},
	}
	for _, c := range cases {
		if got := Within(c.v, c.lo, c.hi, c.tol); got != c.want {
			t.Errorf("Within(%v, %v, %v, %v) = %v, want %v", c.v, c.lo, c.hi, c.tol, got, c.want)
		}
	}
}
