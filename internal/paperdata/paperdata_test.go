package paperdata

import (
	"math"
	"testing"
	"time"
)

func TestFigure1OfferMatchesPaper(t *testing.T) {
	f := Figure1Offer()
	if err := f.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if f.EarliestStart.Hour() != 22 || f.LatestStart.Hour() != 5 {
		t.Errorf("window = %v..%v", f.EarliestStart, f.LatestStart)
	}
	if f.Duration() != 2*time.Hour || f.TimeFlexibility() != 7*time.Hour {
		t.Errorf("duration %v, flexibility %v", f.Duration(), f.TimeFlexibility())
	}
	if math.Abs(f.TotalAvgEnergy()-50) > 1e-9 {
		t.Errorf("energy = %v, want 50", f.TotalAvgEnergy())
	}
}

func TestFigure5DayMatchesPaper(t *testing.T) {
	day := Figure5Day()
	if day.Len() != 96 {
		t.Fatalf("intervals = %d", day.Len())
	}
	if math.Abs(day.Total()-Figure5DayTotal) > 1e-9 {
		t.Errorf("total = %v, want %v", day.Total(), Figure5DayTotal)
	}
	// Every annotated peak interval lies strictly above the mean; every
	// base interval strictly below (the construction invariant the
	// peak-detection walkthrough depends on).
	mean := day.Mean()
	inPeak := make([]bool, 96)
	var sizes float64
	for _, p := range Figure5Peaks() {
		var size float64
		for i := 0; i < p.Length; i++ {
			idx := p.StartInterval + i
			inPeak[idx] = true
			size += day.Value(idx)
		}
		if math.Abs(size-p.Size) > 1e-9 {
			t.Errorf("peak at %d: size %v, want %v", p.StartInterval, size, p.Size)
		}
		sizes += size
	}
	for i := 0; i < 96; i++ {
		if inPeak[i] && day.Value(i) <= mean {
			t.Errorf("peak interval %d not above mean", i)
		}
		if !inPeak[i] && day.Value(i) >= mean {
			t.Errorf("base interval %d not below mean", i)
		}
	}
	// The printed sizes sum to 12.95 kWh.
	if math.Abs(sizes-12.95) > 1e-9 {
		t.Errorf("peak sizes sum = %v, want 12.95", sizes)
	}
}

func TestPeaksAreSeparated(t *testing.T) {
	peaks := Figure5Peaks()
	for i := 1; i < len(peaks); i++ {
		prevEnd := peaks[i-1].StartInterval + peaks[i-1].Length
		if peaks[i].StartInterval <= prevEnd {
			t.Errorf("peaks %d and %d touch", i-1, i)
		}
	}
}
