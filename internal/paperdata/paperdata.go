// Package paperdata reconstructs the concrete scenarios printed in the
// paper — the Fig. 1 electric-vehicle flex-offer and the Fig. 5 consumption
// day with its eight annotated peaks — so tests, examples and the
// experiment harness all reproduce against the same canonical inputs.
package paperdata

import (
	"time"

	"repro/internal/flexoffer"
	"repro/internal/timeseries"
)

// Day0 is the reference day used across examples and experiments.
var Day0 = time.Date(2012, 6, 4, 0, 0, 0, 0, time.UTC) // a Monday

// Figure1Offer builds the flex-offer of the paper's Fig. 1: an electric
// vehicle whose charging must start between 10 PM and 5 AM, takes 2 hours,
// and requires 50 kWh in total. Slices are 15 minutes; the energy
// flexibility band is ±10 % around the average per-slice energy (the
// solid/dotted areas of the figure).
func Figure1Offer() *flexoffer.FlexOffer {
	const slices = 8 // 2 hours of 15-minute slices
	const totalKWh = 50.0
	per := totalKWh / slices
	earliest := Day0.Add(22 * time.Hour) // 10 PM
	f := &flexoffer.FlexOffer{
		ID:             "fig1-ev",
		ConsumerID:     "ev-owner",
		Appliance:      "electric vehicle",
		CreationTime:   Day0.Add(8 * time.Hour),
		AcceptanceTime: Day0.Add(12 * time.Hour),
		AssignmentTime: Day0.Add(20 * time.Hour),
		EarliestStart:  earliest,
		LatestStart:    Day0.Add(29 * time.Hour), // 5 AM next day
		Profile:        flexoffer.UniformProfile(slices, 15*time.Minute, per*0.9, per*1.1),
	}
	if err := f.Validate(); err != nil {
		// The figure's numbers are fixed; an invalid offer here is a
		// programming error, not an input condition.
		panic(err)
	}
	return f
}

// Figure5Peak describes one of the paper's annotated peaks.
type Figure5Peak struct {
	// StartInterval is the first 15-minute interval of the peak.
	StartInterval int
	// Length is the number of intervals.
	Length int
	// Size is the peak's total energy in kWh, as printed in Fig. 5.
	Size float64
}

// Figure5Peaks returns the eight peaks of Fig. 5 with the paper's printed
// sizes (0.47, 1.5, 0.48, 0.48, 1.85, 2.22, 5.47, 0.48 kWh), placed over
// the day in the figure's qualitative order.
func Figure5Peaks() []Figure5Peak {
	return []Figure5Peak{
		{StartInterval: 8, Length: 1, Size: 0.47},  // ~02:00
		{StartInterval: 26, Length: 3, Size: 1.50}, // ~06:30
		{StartInterval: 36, Length: 1, Size: 0.48}, // ~09:00
		{StartInterval: 41, Length: 1, Size: 0.48}, // ~10:15
		{StartInterval: 50, Length: 4, Size: 1.85}, // ~12:30
		{StartInterval: 62, Length: 4, Size: 2.22}, // ~15:30
		{StartInterval: 72, Length: 8, Size: 5.47}, // 18:00–20:00
		{StartInterval: 90, Length: 1, Size: 0.48}, // ~22:30
	}
}

// Figure5DayTotal is the day's total consumption quoted in the paper's
// walkthrough: 39.02 kWh (so a 5 % flexible part is 1.951 kWh).
const Figure5DayTotal = 39.02

// Figure5Day reconstructs the Fig. 5 household day: a 96-interval
// (15-minute) series whose total is exactly 39.02 kWh and whose
// above-average runs are exactly the eight annotated peaks with the printed
// sizes. Base intervals carry equal energy below the daily mean.
func Figure5Day() *timeseries.Series {
	peaks := Figure5Peaks()
	vals := make([]float64, 96)
	var peakEnergy float64
	var peakIntervals int
	for _, p := range peaks {
		peakEnergy += p.Size
		peakIntervals += p.Length
	}
	base := (Figure5DayTotal - peakEnergy) / float64(96-peakIntervals)
	for i := range vals {
		vals[i] = base
	}
	for _, p := range peaks {
		per := p.Size / float64(p.Length)
		for i := 0; i < p.Length; i++ {
			vals[p.StartInterval+i] = per
		}
	}
	return timeseries.MustNew(Day0, 15*time.Minute, vals)
}
