package patterns

import (
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/timeseries"
)

// 2012-06-04 is a Monday.
var monday = time.Date(2012, 6, 4, 0, 0, 0, 0, time.UTC)

// weekOfEvents builds events over `weeks` weeks: a daily robot run at 10:00
// and a weekend-only dishwasher run at 19:00 on Saturdays and Sundays.
func weekOfEvents(weeks int) []Event {
	var events []Event
	for w := 0; w < weeks; w++ {
		weekStart := monday.AddDate(0, 0, 7*w)
		for d := 0; d < 7; d++ {
			day := weekStart.AddDate(0, 0, d)
			events = append(events, Event{
				Appliance: "robot", Start: day.Add(10 * time.Hour), Energy: 0.7,
			})
			if timeseries.DayTypeOf(day) == timeseries.Weekend {
				events = append(events, Event{
					Appliance: "dishwasher", Start: day.Add(19 * time.Hour), Energy: 1.5,
				})
			}
		}
	}
	return events
}

func TestFrequencies(t *testing.T) {
	weeks := 4
	events := weekOfEvents(weeks)
	from := monday
	to := monday.AddDate(0, 0, 7*weeks)
	fs, err := Frequencies(events, from, to)
	if err != nil {
		t.Fatalf("Frequencies: %v", err)
	}
	if len(fs) != 2 {
		t.Fatalf("appliances = %d, want 2", len(fs))
	}
	// Sorted by name: dishwasher, robot.
	dish, robot := fs[0], fs[1]
	if dish.Appliance != "dishwasher" || robot.Appliance != "robot" {
		t.Fatalf("order = %s, %s", fs[0].Appliance, fs[1].Appliance)
	}
	if math.Abs(robot.RunsPerDay-1) > 1e-9 {
		t.Errorf("robot rate = %v, want 1/day", robot.RunsPerDay)
	}
	if math.Abs(robot.RunsPerWorkday-1) > 1e-9 || math.Abs(robot.RunsPerWeekendDay-1) > 1e-9 {
		t.Errorf("robot split = %v / %v", robot.RunsPerWorkday, robot.RunsPerWeekendDay)
	}
	// Dishwasher: weekend only → 2 runs/week over 7 days.
	if math.Abs(dish.RunsPerDay-2.0/7) > 1e-9 {
		t.Errorf("dishwasher rate = %v, want 2/7", dish.RunsPerDay)
	}
	if dish.RunsPerWorkday != 0 || math.Abs(dish.RunsPerWeekendDay-1) > 1e-9 {
		t.Errorf("dishwasher split = %v / %v", dish.RunsPerWorkday, dish.RunsPerWeekendDay)
	}
	if math.Abs(dish.MeanEnergy-1.5) > 1e-9 {
		t.Errorf("dishwasher energy = %v", dish.MeanEnergy)
	}
	if math.Abs(robot.MeanStartHour-10) > 0.01 {
		t.Errorf("robot mean start hour = %v, want 10", robot.MeanStartHour)
	}
}

func TestFrequenciesCircularMeanHour(t *testing.T) {
	// Runs at 23:00 and 01:00 → circular mean 0:00, not 12:00.
	events := []Event{
		{Appliance: "ev", Start: monday.Add(23 * time.Hour), Energy: 40},
		{Appliance: "ev", Start: monday.Add(25 * time.Hour), Energy: 40},
	}
	fs, err := Frequencies(events, monday, monday.AddDate(0, 0, 2))
	if err != nil {
		t.Fatalf("Frequencies: %v", err)
	}
	h := fs[0].MeanStartHour
	if h > 1 && h < 23 {
		t.Errorf("circular mean hour = %v, want near 0", h)
	}
}

func TestFrequenciesWindowFiltering(t *testing.T) {
	events := weekOfEvents(2)
	// Only the first week is inside the window.
	fs, err := Frequencies(events, monday, monday.AddDate(0, 0, 7))
	if err != nil {
		t.Fatalf("Frequencies: %v", err)
	}
	for _, f := range fs {
		if f.Appliance == "robot" && f.Count != 7 {
			t.Errorf("robot count = %d, want 7", f.Count)
		}
	}
	if _, err := Frequencies(events, monday, monday); !errors.Is(err, ErrInput) {
		t.Errorf("empty window err = %v", err)
	}
}

func TestMineSchedule(t *testing.T) {
	weeks := 4
	events := weekOfEvents(weeks)
	entries, err := MineSchedule(events, monday, monday.AddDate(0, 0, 7*weeks), 0.5)
	if err != nil {
		t.Fatalf("MineSchedule: %v", err)
	}
	// Expected: robot at 10:00 on both day types, dishwasher at 19:00 on
	// weekends only.
	var robotWork, robotWeekend, dishWeekend, dishWork bool
	for _, e := range entries {
		switch {
		case e.Appliance == "robot" && e.Hour == 10 && e.DayType == timeseries.Workday:
			robotWork = true
			if math.Abs(e.Probability-1) > 1e-9 {
				t.Errorf("robot workday probability = %v", e.Probability)
			}
		case e.Appliance == "robot" && e.Hour == 10 && e.DayType == timeseries.Weekend:
			robotWeekend = true
		case e.Appliance == "dishwasher" && e.Hour == 19 && e.DayType == timeseries.Weekend:
			dishWeekend = true
			if math.Abs(e.MeanEnergy-1.5) > 1e-9 {
				t.Errorf("dishwasher energy = %v", e.MeanEnergy)
			}
		case e.Appliance == "dishwasher" && e.DayType == timeseries.Workday:
			dishWork = true
		}
	}
	if !robotWork || !robotWeekend || !dishWeekend {
		t.Errorf("missing expected entries: %+v", entries)
	}
	if dishWork {
		t.Error("dishwasher scheduled on workdays")
	}
}

func TestMineScheduleSupportThreshold(t *testing.T) {
	// One-off event over 4 weeks of workdays: support 1/20 < 0.5.
	events := []Event{{Appliance: "oven", Start: monday.Add(12 * time.Hour), Energy: 1}}
	entries, err := MineSchedule(events, monday, monday.AddDate(0, 0, 28), 0.5)
	if err != nil {
		t.Fatalf("MineSchedule: %v", err)
	}
	if len(entries) != 0 {
		t.Errorf("low-support entry survived: %+v", entries)
	}
}

func TestMineScheduleErrors(t *testing.T) {
	events := weekOfEvents(1)
	if _, err := MineSchedule(events, monday, monday.AddDate(0, 0, 7), 0); !errors.Is(err, ErrInput) {
		t.Errorf("support 0: %v", err)
	}
	if _, err := MineSchedule(events, monday, monday.AddDate(0, 0, 7), 1.5); !errors.Is(err, ErrInput) {
		t.Errorf("support > 1: %v", err)
	}
	if _, err := MineSchedule(events, monday, monday, 0.5); !errors.Is(err, ErrInput) {
		t.Errorf("empty window: %v", err)
	}
}

func TestCountDayTypes(t *testing.T) {
	w, we := countDayTypes(monday, monday.AddDate(0, 0, 7))
	if w != 5 || we != 2 {
		t.Errorf("day types = %d/%d, want 5/2", w, we)
	}
}
