package patterns

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/timeseries"
)

// Motif is a repeated subsequence pattern found by SAX discretisation
// (Lin et al., "Finding motifs in time series" — the paper's reference
// [13]).
type Motif struct {
	// Word is the SAX word identifying the pattern.
	Word string
	// Length is the subsequence length in intervals.
	Length int
	// Occurrences lists the non-overlapping start indexes, ascending.
	Occurrences []int
}

// Count reports the number of occurrences.
func (m Motif) Count() int { return len(m.Occurrences) }

// saxBreakpoints holds the standard Gaussian equiprobable breakpoints for
// alphabet sizes 2–6.
var saxBreakpoints = map[int][]float64{
	2: {0},
	3: {-0.43, 0.43},
	4: {-0.67, 0, 0.67},
	5: {-0.84, -0.25, 0.25, 0.84},
	6: {-0.97, -0.43, 0, 0.43, 0.97},
}

// FindMotifs slides a window of the given length over the series,
// discretises each window into a SAX word (PAA into wordLen segments,
// z-normalised, mapped through Gaussian breakpoints with alphabetSize
// letters) and reports words occurring at least minCount times at
// non-overlapping positions, most frequent first.
//
// Near-constant windows (standard deviation below a small epsilon) are
// skipped: they carry no shape information and would otherwise dominate the
// output with trivial "flat" motifs.
func FindMotifs(s *timeseries.Series, window, wordLen, alphabetSize, minCount int) ([]Motif, error) {
	if s == nil || s.Len() == 0 {
		return nil, fmt.Errorf("%w: empty series", ErrInput)
	}
	if window < 2 || window > s.Len() {
		return nil, fmt.Errorf("%w: window %d for series of %d", ErrInput, window, s.Len())
	}
	if wordLen < 1 || wordLen > window {
		return nil, fmt.Errorf("%w: word length %d for window %d", ErrInput, wordLen, window)
	}
	bps, ok := saxBreakpoints[alphabetSize]
	if !ok {
		return nil, fmt.Errorf("%w: alphabet size %d not in [2, 6]", ErrInput, alphabetSize)
	}
	if minCount < 2 {
		return nil, fmt.Errorf("%w: min count %d < 2", ErrInput, minCount)
	}

	vals := s.Values()
	occurrences := make(map[string][]int)
	for start := 0; start+window <= len(vals); start++ {
		word, ok := saxWord(vals[start:start+window], wordLen, bps)
		if !ok {
			continue
		}
		occ := occurrences[word]
		// Keep occurrences non-overlapping (trivial matches of a motif
		// with its own shifted self are excluded, per the motif
		// literature).
		if len(occ) > 0 && start < occ[len(occ)-1]+window {
			continue
		}
		occurrences[word] = append(occ, start)
	}

	var out []Motif
	for word, occ := range occurrences {
		if len(occ) >= minCount {
			out = append(out, Motif{Word: word, Length: window, Occurrences: occ})
		}
	}
	// Most frequent first; ties by word for determinism.
	sortMotifs(out)
	return out, nil
}

func sortMotifs(ms []Motif) {
	for i := 1; i < len(ms); i++ {
		for j := i; j > 0 && motifLess(ms[j], ms[j-1]); j-- {
			ms[j], ms[j-1] = ms[j-1], ms[j]
		}
	}
}

func motifLess(a, b Motif) bool {
	if a.Count() != b.Count() {
		return a.Count() > b.Count()
	}
	return a.Word < b.Word
}

// saxWord converts one window into a SAX word. ok is false for
// near-constant windows.
func saxWord(window []float64, wordLen int, breakpoints []float64) (string, bool) {
	// z-normalise.
	var mean float64
	for _, v := range window {
		mean += v
	}
	mean /= float64(len(window))
	var varSum float64
	for _, v := range window {
		d := v - mean
		varSum += d * d
	}
	std := math.Sqrt(varSum / float64(len(window)))
	if std < 1e-9 {
		return "", false
	}

	// PAA: average the window into wordLen segments (fractional bounds).
	var b strings.Builder
	segLen := float64(len(window)) / float64(wordLen)
	for seg := 0; seg < wordLen; seg++ {
		lo := int(float64(seg) * segLen)
		hi := int(float64(seg+1) * segLen)
		if hi <= lo {
			hi = lo + 1
		}
		if hi > len(window) {
			hi = len(window)
		}
		var avg float64
		for i := lo; i < hi; i++ {
			avg += window[i]
		}
		avg = (avg/float64(hi-lo) - mean) / std

		letter := 0
		for _, bp := range breakpoints {
			if avg > bp {
				letter++
			}
		}
		b.WriteByte(byte('a' + letter))
	}
	return b.String(), true
}
