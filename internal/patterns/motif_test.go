package patterns

import (
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/timeseries"
)

var t0 = time.Date(2012, 6, 1, 0, 0, 0, 0, time.UTC)

// bumpySeries embeds the same triangular bump at the given offsets on a
// noisy-free flat background.
func bumpySeries(n int, offsets []int) *timeseries.Series {
	vals := make([]float64, n)
	bump := []float64{0.1, 0.5, 1.0, 0.5, 0.1}
	for _, off := range offsets {
		for i, b := range bump {
			if off+i < n {
				vals[off+i] += b
			}
		}
	}
	return timeseries.MustNew(t0, 15*time.Minute, vals)
}

func TestFindMotifsRepeatedBump(t *testing.T) {
	s := bumpySeries(200, []int{10, 60, 110, 160})
	motifs, err := FindMotifs(s, 5, 5, 3, 3)
	if err != nil {
		t.Fatalf("FindMotifs: %v", err)
	}
	if len(motifs) == 0 {
		t.Fatal("no motifs found")
	}
	top := motifs[0]
	if top.Count() < 4 {
		t.Errorf("top motif count = %d, want >= 4", top.Count())
	}
	// Each embedded bump should be within one window length of an
	// occurrence of the top motif (the SAX word may lock onto the bump's
	// leading edge rather than its centre).
	for _, off := range []int{10, 60, 110, 160} {
		ok := false
		for _, occ := range top.Occurrences {
			if occ >= off-top.Length && occ <= off+top.Length {
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("offset %d not near any occurrence %v", off, top.Occurrences)
		}
	}
}

func TestFindMotifsNonOverlapping(t *testing.T) {
	s := bumpySeries(100, []int{10, 50})
	motifs, err := FindMotifs(s, 5, 5, 3, 2)
	if err != nil {
		t.Fatalf("FindMotifs: %v", err)
	}
	for _, m := range motifs {
		for i := 1; i < len(m.Occurrences); i++ {
			if m.Occurrences[i] < m.Occurrences[i-1]+m.Length {
				t.Fatalf("overlapping occurrences in %v", m.Occurrences)
			}
		}
	}
}

func TestFindMotifsSkipsFlatWindows(t *testing.T) {
	flat := timeseries.MustNew(t0, 15*time.Minute, make([]float64, 100))
	motifs, err := FindMotifs(flat, 5, 5, 3, 2)
	if err != nil {
		t.Fatalf("FindMotifs: %v", err)
	}
	if len(motifs) != 0 {
		t.Errorf("flat series produced motifs: %+v", motifs)
	}
}

func TestFindMotifsErrors(t *testing.T) {
	s := bumpySeries(50, []int{10})
	cases := []struct {
		name                                    string
		window, wordLen, alphabetSize, minCount int
	}{
		{"window too small", 1, 1, 3, 2},
		{"window too large", 100, 5, 3, 2},
		{"word longer than window", 5, 10, 3, 2},
		{"alphabet too small", 5, 5, 1, 2},
		{"alphabet too large", 5, 5, 7, 2},
		{"min count too small", 5, 5, 3, 1},
	}
	for _, tc := range cases {
		if _, err := FindMotifs(s, tc.window, tc.wordLen, tc.alphabetSize, tc.minCount); !errors.Is(err, ErrInput) {
			t.Errorf("%s: err = %v, want ErrInput", tc.name, err)
		}
	}
	empty := timeseries.MustNew(t0, time.Minute, nil)
	if _, err := FindMotifs(empty, 5, 5, 3, 2); !errors.Is(err, ErrInput) {
		t.Errorf("empty series: %v", err)
	}
}

func TestSaxWord(t *testing.T) {
	bps := saxBreakpoints[3]
	// Rising ramp → letters ascend.
	word, ok := saxWord([]float64{0, 1, 2, 3, 4, 5}, 3, bps)
	if !ok {
		t.Fatal("ramp rejected")
	}
	if word != "abc" {
		t.Errorf("ramp word = %q, want abc", word)
	}
	// Constant window rejected.
	if _, ok := saxWord([]float64{2, 2, 2, 2}, 2, bps); ok {
		t.Error("constant window accepted")
	}
	// Same shape at different scales gives the same word (z-normalised).
	w1, _ := saxWord([]float64{0, 1, 0, -1, 0, 1}, 3, bps)
	w2, _ := saxWord([]float64{0, 100, 0, -100, 0, 100}, 3, bps)
	if w1 != w2 {
		t.Errorf("scale changed word: %q vs %q", w1, w2)
	}
}

func TestSaxWordFractionalSegments(t *testing.T) {
	// Window of 7 into word of 3: segments must cover everything without
	// panicking.
	word, ok := saxWord([]float64{1, 2, 3, 4, 5, 6, 7}, 3, saxBreakpoints[4])
	if !ok || len(word) != 3 {
		t.Errorf("word = %q, ok = %v", word, ok)
	}
}

func TestMotifOrderingDeterministic(t *testing.T) {
	s := bumpySeries(300, []int{10, 60, 110, 160, 210, 260})
	a, err := FindMotifs(s, 5, 5, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FindMotifs(s, 5, 5, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("motif count differs between runs")
	}
	for i := range a {
		if a[i].Word != b[i].Word || a[i].Count() != b[i].Count() {
			t.Fatal("motif order not deterministic")
		}
	}
	for i := 1; i < len(a); i++ {
		if a[i].Count() > a[i-1].Count() {
			t.Fatal("motifs not sorted by count")
		}
	}
}

// TestMotifsOnDailyPattern: a repeating daily profile yields a motif whose
// occurrences are ~one day apart.
func TestMotifsOnDailyPattern(t *testing.T) {
	const perDay = 96
	days := 5
	vals := make([]float64, perDay*days)
	for d := 0; d < days; d++ {
		for i := 0; i < perDay; i++ {
			vals[d*perDay+i] = math.Sin(2*math.Pi*float64(i)/perDay) + 1
		}
	}
	s := timeseries.MustNew(t0, 15*time.Minute, vals)
	motifs, err := FindMotifs(s, perDay, 8, 4, 3)
	if err != nil {
		t.Fatalf("FindMotifs: %v", err)
	}
	if len(motifs) == 0 {
		t.Fatal("no daily motif found")
	}
	top := motifs[0]
	if top.Count() < days-1 {
		t.Errorf("daily motif count = %d, want >= %d", top.Count(), days-1)
	}
}
