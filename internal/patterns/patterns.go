// Package patterns mines appliance usage patterns from detected (or
// ground-truth) activation events: usage frequencies for the
// frequency-based extraction (§4.1 — "derive which appliance and how
// frequently was used") and usage schedules for the schedule-based
// extraction (§4.2 — "the exact schedule of the usage of each appliance can
// be derived"). It also provides SAX-style motif discovery over raw series,
// following the time-series-motif line of work the paper cites [13].
package patterns

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/timeseries"
)

// ErrInput is wrapped by input validation errors.
var ErrInput = errors.New("patterns: invalid input")

// Event is one appliance activation, as produced by disaggregation.
type Event struct {
	Appliance string
	Start     time.Time
	Energy    float64
}

// Frequency summarises how often one appliance runs.
type Frequency struct {
	Appliance string
	// Count is the number of observed runs.
	Count int
	// RunsPerDay is Count divided by the observation days.
	RunsPerDay float64
	// RunsPerWorkday and RunsPerWeekendDay split the rate by day type
	// (the §4.2 observation that dishwashers run more on weekends).
	RunsPerWorkday    float64
	RunsPerWeekendDay float64
	// MeanEnergy is the average energy per run, in kWh.
	MeanEnergy float64
	// MeanStartHour is the circularly averaged start hour of day [0, 24).
	MeanStartHour float64
}

// Frequencies estimates per-appliance usage frequency over the observation
// window [from, to). Events outside the window are ignored. Results are
// sorted by appliance name.
func Frequencies(events []Event, from, to time.Time) ([]Frequency, error) {
	days := to.Sub(from).Hours() / 24
	if days <= 0 {
		return nil, fmt.Errorf("%w: empty observation window", ErrInput)
	}
	workdays, weekendDays := countDayTypes(from, to)

	type acc struct {
		count, workday, weekend int
		energy                  float64
		sinSum, cosSum          float64
	}
	byApp := make(map[string]*acc)
	for _, e := range events {
		if e.Start.Before(from) || !e.Start.Before(to) {
			continue
		}
		a := byApp[e.Appliance]
		if a == nil {
			a = &acc{}
			byApp[e.Appliance] = a
		}
		a.count++
		a.energy += e.Energy
		if timeseries.DayTypeOf(e.Start) == timeseries.Weekend {
			a.weekend++
		} else {
			a.workday++
		}
		h := float64(e.Start.UTC().Hour()) + float64(e.Start.UTC().Minute())/60
		angle := 2 * math.Pi * h / 24
		a.sinSum += math.Sin(angle)
		a.cosSum += math.Cos(angle)
	}

	out := make([]Frequency, 0, len(byApp))
	for name, a := range byApp {
		f := Frequency{
			Appliance:  name,
			Count:      a.count,
			RunsPerDay: float64(a.count) / days,
			MeanEnergy: a.energy / float64(a.count),
		}
		if workdays > 0 {
			f.RunsPerWorkday = float64(a.workday) / float64(workdays)
		}
		if weekendDays > 0 {
			f.RunsPerWeekendDay = float64(a.weekend) / float64(weekendDays)
		}
		hour := math.Atan2(a.sinSum, a.cosSum) / (2 * math.Pi) * 24
		if hour < 0 {
			hour += 24
		}
		f.MeanStartHour = hour
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Appliance < out[j].Appliance })
	return out, nil
}

// countDayTypes counts whole calendar days of each type in [from, to).
func countDayTypes(from, to time.Time) (workdays, weekendDays int) {
	day := timeseries.TruncateDay(from)
	for day.Before(to) {
		if timeseries.DayTypeOf(day) == timeseries.Weekend {
			weekendDays++
		} else {
			workdays++
		}
		day = day.Add(24 * time.Hour)
	}
	return workdays, weekendDays
}

// ScheduleEntry is one mined habitual usage slot: "this appliance tends to
// run in this hour on this kind of day".
type ScheduleEntry struct {
	Appliance string
	DayType   timeseries.DayType
	Hour      int
	// Probability is the fraction of days of this type with a run starting
	// in this hour.
	Probability float64
	// MeanEnergy is the average run energy in this slot, in kWh.
	MeanEnergy float64
}

// MineSchedule derives the usage schedule of each appliance: hour-of-day ×
// day-type cells whose empirical start probability is at least minSupport.
// Entries are sorted by appliance, day type, hour.
func MineSchedule(events []Event, from, to time.Time, minSupport float64) ([]ScheduleEntry, error) {
	if minSupport <= 0 || minSupport > 1 {
		return nil, fmt.Errorf("%w: support %v outside (0, 1]", ErrInput, minSupport)
	}
	workdays, weekendDays := countDayTypes(from, to)
	if workdays+weekendDays == 0 {
		return nil, fmt.Errorf("%w: empty observation window", ErrInput)
	}

	type cell struct {
		count  int
		energy float64
	}
	cells := make(map[string]map[timeseries.DayType]map[int]*cell)
	for _, e := range events {
		if e.Start.Before(from) || !e.Start.Before(to) {
			continue
		}
		dt := timeseries.DayTypeOf(e.Start)
		h := e.Start.UTC().Hour()
		byDT := cells[e.Appliance]
		if byDT == nil {
			byDT = make(map[timeseries.DayType]map[int]*cell)
			cells[e.Appliance] = byDT
		}
		byHour := byDT[dt]
		if byHour == nil {
			byHour = make(map[int]*cell)
			byDT[dt] = byHour
		}
		c := byHour[h]
		if c == nil {
			c = &cell{}
			byHour[h] = c
		}
		c.count++
		c.energy += e.Energy
	}

	var out []ScheduleEntry
	for app, byDT := range cells {
		for dt, byHour := range byDT {
			denom := workdays
			if dt == timeseries.Weekend {
				denom = weekendDays
			}
			if denom == 0 {
				continue
			}
			for h, c := range byHour {
				p := float64(c.count) / float64(denom)
				if p >= minSupport {
					out = append(out, ScheduleEntry{
						Appliance:   app,
						DayType:     dt,
						Hour:        h,
						Probability: math.Min(p, 1),
						MeanEnergy:  c.energy / float64(c.count),
					})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Appliance != b.Appliance {
			return a.Appliance < b.Appliance
		}
		if a.DayType != b.DayType {
			return a.DayType < b.DayType
		}
		return a.Hour < b.Hour
	})
	return out, nil
}
