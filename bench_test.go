// Package repro_bench holds the benchmark harness: one testing.B benchmark
// per experiment row of DESIGN.md (E1–E16), plus ablation benches for the
// design decisions called out there. Run with
//
//	go test -bench=. -benchmem
//
// All fixtures are deterministic; timings measure the reproduction's
// computational cost, while the experiment *outputs* come from
// cmd/experiments (recorded in EXPERIMENTS.md).
package repro_bench

import (
	"context"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/agg"
	"repro/internal/appliance"
	"repro/internal/core"
	"repro/internal/disagg"
	"repro/internal/eval"
	"repro/internal/flexoffer"
	"repro/internal/forecast"
	"repro/internal/household"
	"repro/internal/market"
	"repro/internal/paperdata"
	"repro/internal/patterns"
	"repro/internal/pipeline"
	"repro/internal/res"
	"repro/internal/sched"
	"repro/internal/tariff"
	"repro/internal/timeseries"
)

var (
	benchStart = time.Date(2012, 6, 4, 0, 0, 0, 0, time.UTC)
	registry   = appliance.Default()

	fixtureOnce sync.Once
	// fixtures shared across benchmarks (built once, deterministic).
	weekSeries *timeseries.Series // 7 days, 15-min, one household
	fineSeries *timeseries.Series // 14 days, 1-min, one household
	fineTruth  []household.Activation
	pairFlat   *timeseries.Series
	pairMulti  *timeseries.Series
	popResults []*household.Result
	popTotal   *timeseries.Series
	peakOffers flexoffer.Set
	peakInflex *timeseries.Series
	windSupply *timeseries.Series
)

// e6TOU is the E6 time-of-use scheme (low price 22:00-06:00).
func e6TOU() tariff.TimeOfUse {
	return tariff.TimeOfUse{HighPrice: 0.40, LowPrice: 0.15, LowStartHour: 22, LowEndHour: 6}
}

// e6Response is the E6 consumer behaviour (90% of flexible runs shifted).
func e6Response() tariff.Response {
	return tariff.Response{ShiftProbability: 0.9}
}

func fixtures(b *testing.B) {
	b.Helper()
	fixtureOnce.Do(func() {
		cfg := household.Config{
			ID: "bench-home", Residents: 3,
			Appliances: []string{"washing machine Y", "dishwasher Z", "vacuum cleaning robot X", "refrigerator"},
			BaseLoadKW: 0.22, MorningPeak: 0.7, EveningPeak: 1.1, NoiseStd: 0.08,
			Seed: 99,
		}
		week, err := household.Simulate(registry, cfg, benchStart, 7, 15*time.Minute)
		if err != nil {
			panic(err)
		}
		weekSeries = week.Total

		fine, err := household.Simulate(registry, cfg, benchStart, 14, time.Minute)
		if err != nil {
			panic(err)
		}
		fineSeries = fine.Total
		fineTruth = fine.Activations

		cfgs := household.Population(20, 5)
		popResults, popTotal, err = household.SimulatePopulation(registry, cfgs, benchStart, 7, 15*time.Minute)
		if err != nil {
			panic(err)
		}

		// Peak offers + inflexible remainder over the population.
		var parts []*timeseries.Series
		for i, r := range popResults {
			p := core.DefaultParams()
			p.Seed = int64(i)
			out, err := (&core.PeakExtractor{Params: p}).Extract(r.Total)
			if err != nil {
				panic(err)
			}
			peakOffers = append(peakOffers, out.Offers...)
			parts = append(parts, out.Modified)
		}
		peakInflex, err = timeseries.Sum(parts...)
		if err != nil {
			panic(err)
		}

		turbine := res.DefaultTurbine()
		turbine.RatedPowerKW = popTotal.Mean() / 0.25 * 1.5
		windSupply, err = res.Simulate(res.DefaultWindModel(), turbine, benchStart, 7, 15*time.Minute, 5)
		if err != nil {
			panic(err)
		}
	})
}

// BenchmarkFigure1EVFlexOffer (E1): construct, validate and schedule the
// Fig. 1 offer.
func BenchmarkFigure1EVFlexOffer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := paperdata.Figure1Offer()
		if err := f.Validate(); err != nil {
			b.Fatal(err)
		}
		if _, err := f.AssignDefault(f.EarliestStart.Add(2 * time.Hour)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBasicExtraction (E2): the basic approach over one household-week.
func BenchmarkBasicExtraction(b *testing.B) {
	fixtures(b)
	p := core.DefaultParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (&core.BasicExtractor{Params: p}).Extract(weekSeries); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPeakExtraction (E3): the peak-based approach over one
// household-week (detection + filtering + selection + offer building).
func BenchmarkPeakExtraction(b *testing.B) {
	fixtures(b)
	p := core.DefaultParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (&core.PeakExtractor{Params: p}).Extract(weekSeries); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPeakDetectionOnly (E3 ablation): raw peak detection over the
// Fig. 5 day.
func BenchmarkPeakDetectionOnly(b *testing.B) {
	day := paperdata.Figure5Day()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.DetectPeaks(day)
	}
}

// BenchmarkApplianceRegistry (E4): building the registry and computing
// 15-minute signatures for every appliance.
func BenchmarkApplianceRegistry(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reg := appliance.Default()
		for _, a := range reg.All() {
			if _, err := a.SignatureAt(15 * time.Minute); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFlexibleShare (E5): basic+peak+random extraction across a
// 20-household population week.
func BenchmarkFlexibleShare(b *testing.B) {
	fixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := core.DefaultParams()
		for _, r := range popResults {
			for _, ex := range []core.Extractor{
				&core.BasicExtractor{Params: p},
				&core.PeakExtractor{Params: p},
				&core.RandomExtractor{Params: p},
			} {
				if _, err := ex.Extract(r.Total); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

// BenchmarkMultiTariffExtraction (E6): typical-profile estimation plus
// excess detection over a 14+14 day pair.
func BenchmarkMultiTariffExtraction(b *testing.B) {
	benchPair(b)
	e := &core.MultiTariffExtractor{
		Params: core.DefaultParams(),
		Tariff: e6TOU(),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.ExtractPair(pairFlat, pairMulti); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFrequencyExtraction (E7): full appliance-level pipeline
// (disaggregation + frequency mining + offer building) on 14 days of
// 1-minute data.
func BenchmarkFrequencyExtraction(b *testing.B) {
	fixtures(b)
	e := &core.FrequencyExtractor{Params: core.DefaultParams(), Registry: registry}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Extract(fineSeries); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDisaggregation (E8): event-based NILM at the paper's contested
// granularities.
func BenchmarkDisaggregation(b *testing.B) {
	fixtures(b)
	for _, resn := range []time.Duration{time.Minute, 15 * time.Minute, 30 * time.Minute} {
		series, err := fineSeries.ResampleTo(resn)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(resn.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := disagg.Detect(series, registry, disagg.Config{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkScheduleExtraction (E9): schedule mining + extraction on 14 days
// of 1-minute data.
func BenchmarkScheduleExtraction(b *testing.B) {
	fixtures(b)
	e := &core.ScheduleExtractor{Params: core.DefaultParams(), Registry: registry, MinSupport: 0.2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Extract(fineSeries); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRealismEvaluation (E10): realism metrics over the population's
// peak-based offers.
func BenchmarkRealismEvaluation(b *testing.B) {
	fixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.Evaluate(peakOffers, popTotal); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAggregation (E11): grid-based aggregation of the population's
// offers.
func BenchmarkAggregation(b *testing.B) {
	fixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := agg.AggregateSet(peakOffers, agg.DefaultParams()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScheduling (E12): greedy + local-search scheduling of aggregated
// offers against wind.
func BenchmarkScheduling(b *testing.B) {
	fixtures(b)
	aggs, err := agg.AggregateSet(peakOffers, agg.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	var offers flexoffer.Set
	for _, a := range aggs {
		offers = append(offers, a.Offer)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (&sched.Scheduler{}).Schedule(offers, peakInflex, windSupply); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHouseholdSimulation (substrate ablation): one household-week at
// 15-minute output resolution.
func BenchmarkHouseholdSimulation(b *testing.B) {
	cfg := household.Config{
		ID: "bench", Residents: 3,
		Appliances: []string{"washing machine Y", "dishwasher Z", "refrigerator"},
		BaseLoadKW: 0.25, MorningPeak: 0.8, EveningPeak: 1.2, NoiseStd: 0.1,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		if _, err := household.Simulate(registry, cfg, benchStart, 7, 15*time.Minute); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDisaggregateAssignment (agg ablation): splitting one aggregate
// assignment back into members.
func BenchmarkDisaggregateAssignment(b *testing.B) {
	fixtures(b)
	aggs, err := agg.AggregateSet(peakOffers, agg.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	// Pick the largest aggregate.
	var target *agg.Aggregate
	for _, a := range aggs {
		if target == nil || len(a.Members) > len(target.Members) {
			target = a
		}
	}
	asg, err := target.Offer.AssignDefault(target.Offer.EarliestStart)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := target.Disaggregate(asg); err != nil {
			b.Fatal(err)
		}
	}
}

// benchPair lazily builds the E6 paired series.
var pairOnce sync.Once

func benchPair(b *testing.B) {
	b.Helper()
	pairOnce.Do(func() {
		cfg := household.Config{
			ID: "bench-pair", Residents: 3,
			Appliances: []string{"washing machine Y", "dishwasher Z", "tumble dryer", "television", "refrigerator"},
			BaseLoadKW: 0.25, MorningPeak: 0.8, EveningPeak: 1.2, NoiseStd: 0.08,
			Seed: 66,
		}
		flat, multi, err := household.SimulatePair(registry, cfg, e6TOU(),
			e6Response(), benchStart, 14, 15*time.Minute)
		if err != nil {
			panic(err)
		}
		pairFlat, pairMulti = flat.Total, multi.Total
	})
}

// BenchmarkMarketLifecycle: submit + accept + assign through the collection
// store (the [3] substrate).
func BenchmarkMarketLifecycle(b *testing.B) {
	now := benchStart
	store := market.NewStore(func() time.Time { return now })
	offer := &flexoffer.FlexOffer{
		EarliestStart: benchStart.Add(6 * time.Hour),
		LatestStart:   benchStart.Add(10 * time.Hour),
		Profile:       flexoffer.UniformProfile(4, 15*time.Minute, 0.5, 1.0),
	}
	energies := []float64{0.75, 0.75, 0.75, 0.75}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := offer.Clone()
		f.ID = strconv.Itoa(i)
		if err := store.Submit(f); err != nil {
			b.Fatal(err)
		}
		if err := store.Accept(f.ID); err != nil {
			b.Fatal(err)
		}
		if _, err := store.Assign(f.ID, f.EarliestStart, energies); err != nil {
			b.Fatal(err)
		}
	}
}

// benchBatch lazily builds the pipeline benchmark batch: a 100-household
// population week, one extraction job per household.
var (
	batchOnce sync.Once
	batchJobs []pipeline.Job
)

func benchBatch(b *testing.B) {
	b.Helper()
	batchOnce.Do(func() {
		cfgs := household.Population(100, 11)
		results, _, err := household.SimulatePopulation(registry, cfgs, benchStart, 7, 15*time.Minute)
		if err != nil {
			panic(err)
		}
		batchJobs = make([]pipeline.Job, len(results))
		for i, r := range results {
			batchJobs[i] = pipeline.Job{ID: r.Config.ID, Series: r.Total}
		}
	})
}

// BenchmarkPipelineExtraction: peak-based extraction of a 100-household
// batch through the concurrent pipeline at 1, 4 and 8 workers. On multi-core
// hardware the per-series extraction work parallelises; compare ns/op across
// the sub-benchmarks for the speedup (expected >1.5x at 4 workers).
func BenchmarkPipelineExtraction(b *testing.B) {
	benchBatch(b)
	for _, workers := range []int{1, 4, 8} {
		b.Run("workers="+strconv.Itoa(workers), func(b *testing.B) {
			cfg := pipeline.Config{
				Workers: workers,
				NewExtractor: func(j pipeline.Job) core.Extractor {
					p := core.DefaultParams()
					p.ConsumerID = j.ID
					for _, c := range j.ID {
						p.Seed = p.Seed*31 + int64(c)
					}
					return &core.PeakExtractor{Params: p}
				},
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				stats, err := pipeline.RunJobs(context.Background(), cfg, batchJobs, pipeline.Discard)
				if err != nil {
					b.Fatal(err)
				}
				if stats.Errors > 0 || stats.SeriesProcessed != len(batchJobs) {
					b.Fatalf("batch incomplete: %s", stats)
				}
			}
		})
	}
}

// BenchmarkForecastHoltWinters (E13): fit + one-week forecast on a
// population week.
func BenchmarkForecastHoltWinters(b *testing.B) {
	fixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := &forecast.HoltWinters{Alpha: 0.25, Beta: 0.01, Gamma: 0.2, Period: 96, Damping: 0.9}
		if err := m.Fit(popTotal); err != nil {
			b.Fatal(err)
		}
		if _, err := m.Forecast(96 * 7); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMotifDiscovery: SAX motif search over a household week.
func BenchmarkMotifDiscovery(b *testing.B) {
	fixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := patterns.FindMotifs(weekSeries, 96, 8, 4, 3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProductionExtraction (E15): production flex-offers from a wind
// week.
func BenchmarkProductionExtraction(b *testing.B) {
	fixtures(b)
	e := &core.ProductionExtractor{Params: core.DefaultParams()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Extract(windSupply); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBlockQuantileBaseline (E16 ablation): the alternative base
// estimator over 14 days of 1-minute data.
func BenchmarkBlockQuantileBaseline(b *testing.B) {
	fixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fineSeries.BlockQuantileBaseline(1440, 0.25); err != nil {
			b.Fatal(err)
		}
	}
}
