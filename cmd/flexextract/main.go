// Command flexextract runs a flexibility extraction approach over a
// consumption CSV and writes the resulting flex-offers (JSON) and the
// modified series (CSV) — the Fig. 2 pipeline as a tool.
//
// Usage:
//
//	flexextract -in house.csv -approach peak -flexpct 0.05 -offers offers.json -modified modified.csv
//	flexextract -in multi.csv -ref flat.csv -approach multitariff ...
//	flexextract -in house_1m.csv -approach frequency ...
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/appliance"
	"repro/internal/core"
	"repro/internal/tariff"
	"repro/internal/timeseries"
)

func main() {
	in := flag.String("in", "", "input consumption CSV (required)")
	ref := flag.String("ref", "", "one-tariff reference CSV (multitariff approach only)")
	approach := flag.String("approach", "peak", "basic | peak | random | multitariff | frequency | schedule")
	flexPct := flag.Float64("flexpct", 0.05, "flexible share of consumption (consumption-level approaches)")
	seed := flag.Int64("seed", 1, "randomisation seed")
	consumer := flag.String("consumer", "", "consumer ID stamped on offers")
	offersOut := flag.String("offers", "offers.json", "output flex-offers JSON")
	modifiedOut := flag.String("modified", "modified.csv", "output modified series CSV")
	lowStart := flag.Int("low-start", 22, "low-tariff window start hour (multitariff)")
	lowEnd := flag.Int("low-end", 6, "low-tariff window end hour (multitariff)")
	resample := flag.Duration("resample", 0, "resample the input to this resolution before extraction (0 = keep)")
	flag.Parse()

	if *in == "" {
		fmt.Fprintln(os.Stderr, "flexextract: -in is required")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*in, *ref, *approach, *flexPct, *seed, *consumer, *offersOut, *modifiedOut, *lowStart, *lowEnd, *resample); err != nil {
		fmt.Fprintf(os.Stderr, "flexextract: %v\n", err)
		os.Exit(1)
	}
}

func readSeries(path string) (*timeseries.Series, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return timeseries.ReadCSV(f)
}

func run(in, ref, approach string, flexPct float64, seed int64, consumer, offersOut, modifiedOut string, lowStart, lowEnd int, resample time.Duration) error {
	input, err := readSeries(in)
	if err != nil {
		return fmt.Errorf("read %s: %w", in, err)
	}
	if resample > 0 {
		input, err = input.ResampleTo(resample)
		if err != nil {
			return fmt.Errorf("resample: %w", err)
		}
	}

	params := core.DefaultParams()
	params.FlexPercentage = flexPct
	params.Seed = seed
	params.ConsumerID = consumer

	var result *core.Result
	switch approach {
	case "basic":
		result, err = (&core.BasicExtractor{Params: params}).Extract(input)
	case "peak":
		result, err = (&core.PeakExtractor{Params: params}).Extract(input)
	case "random":
		result, err = (&core.RandomExtractor{Params: params}).Extract(input)
	case "multitariff":
		if ref == "" {
			return fmt.Errorf("approach multitariff needs -ref (one-tariff series)")
		}
		var reference *timeseries.Series
		reference, err = readSeries(ref)
		if err != nil {
			return fmt.Errorf("read %s: %w", ref, err)
		}
		tou := tariff.TimeOfUse{HighPrice: 0.40, LowPrice: 0.15, LowStartHour: lowStart, LowEndHour: lowEnd}
		result, err = (&core.MultiTariffExtractor{Params: params, Tariff: tou}).ExtractPair(reference, input)
	case "frequency":
		result, err = (&core.FrequencyExtractor{Params: params, Registry: appliance.Default()}).Extract(input)
	case "schedule":
		result, err = (&core.ScheduleExtractor{Params: params, Registry: appliance.Default()}).Extract(input)
	default:
		return fmt.Errorf("unknown approach %q", approach)
	}
	if err != nil {
		return err
	}

	of, err := os.Create(offersOut)
	if err != nil {
		return err
	}
	if err := result.Offers.WriteJSON(of); err != nil {
		of.Close()
		return fmt.Errorf("write %s: %w", offersOut, err)
	}
	if err := of.Close(); err != nil {
		return err
	}
	mf, err := os.Create(modifiedOut)
	if err != nil {
		return err
	}
	if err := result.Modified.WriteCSV(mf); err != nil {
		mf.Close()
		return fmt.Errorf("write %s: %w", modifiedOut, err)
	}
	if err := mf.Close(); err != nil {
		return err
	}

	fmt.Printf("%s: %d offers, %.3f kWh flexible (%.2f%% of input), modified series %.3f kWh\n",
		approach, len(result.Offers), result.Offers.TotalAvgEnergy(),
		result.Offers.TotalAvgEnergy()/input.Total()*100, result.Modified.Total())
	fmt.Printf("wrote %s and %s\n", offersOut, modifiedOut)
	return nil
}
