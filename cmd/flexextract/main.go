// Command flexextract runs a flexibility extraction approach over a
// consumption CSV and writes the resulting flex-offers (JSON) and the
// modified series (CSV) — the Fig. 2 pipeline as a tool.
//
// Single-series usage:
//
//	flexextract -in house.csv -approach peak -flexpct 0.05 -offers offers.json -modified modified.csv
//	flexextract -in multi.csv -ref flat.csv -approach multitariff ...
//	flexextract -in house_1m.csv -approach frequency ...
//
// Batch usage — extract a whole directory of household CSVs over a
// concurrent worker pool (internal/pipeline):
//
//	flexextract -indir data/ -outdir out/ -approach peak -jobs 8
//
// Each data/<name>.csv becomes out/<name>.offers.json and
// out/<name>.modified.csv; offer IDs are qualified with the series name
// ("<name>/peak-0001") so a downstream store never sees collisions. Every
// series gets its own deterministic seed (-seed plus the batch index), so
// results do not depend on -jobs.
//
// -stats-json writes a machine-readable run summary rendered from the
// same internal/obs metric registry mirabeld's /metrics exposes (pipeline
// job counters, per-stage latency histograms, worker saturation); "-"
// writes it to stdout.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/appliance"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/tariff"
	"repro/internal/timeseries"
)

func main() {
	in := flag.String("in", "", "input consumption CSV (single-series mode)")
	indir := flag.String("indir", "", "input directory of consumption CSVs (batch mode)")
	outdir := flag.String("outdir", "", "batch output directory (default: -indir)")
	jobs := flag.Int("jobs", 0, "batch worker count (0 = GOMAXPROCS)")
	ref := flag.String("ref", "", "one-tariff reference CSV (multitariff approach only)")
	approach := flag.String("approach", "peak", "basic | peak | random | multitariff | frequency | schedule")
	flexPct := flag.Float64("flexpct", 0.05, "flexible share of consumption (consumption-level approaches)")
	seed := flag.Int64("seed", 1, "randomisation seed (batch mode: per-series base seed)")
	consumer := flag.String("consumer", "", "consumer ID stamped on offers (single-series mode)")
	offersOut := flag.String("offers", "offers.json", "output flex-offers JSON (single-series mode)")
	modifiedOut := flag.String("modified", "modified.csv", "output modified series CSV (single-series mode)")
	lowStart := flag.Int("low-start", 22, "low-tariff window start hour (multitariff)")
	lowEnd := flag.Int("low-end", 6, "low-tariff window end hour (multitariff)")
	resample := flag.Duration("resample", 0, "resample the input to this resolution before extraction (0 = keep)")
	statsJSON := flag.String("stats-json", "", "write a JSON run summary (obs registry) to this file (\"-\" = stdout)")
	flag.Parse()

	var err error
	switch {
	case *indir != "":
		err = runBatch(*indir, *outdir, *ref, *approach, *flexPct, *seed, *jobs, *lowStart, *lowEnd, *resample, *statsJSON)
	case *in != "":
		err = run(*in, *ref, *approach, *flexPct, *seed, *consumer, *offersOut, *modifiedOut, *lowStart, *lowEnd, *resample, *statsJSON)
	default:
		fmt.Fprintln(os.Stderr, "flexextract: -in (single series) or -indir (batch) is required")
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "flexextract: %v\n", err)
		os.Exit(1)
	}
}

func readSeries(path string) (*timeseries.Series, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return timeseries.ReadCSV(f)
}

// buildExtractor maps an approach name to its extractor.
func buildExtractor(approach string, params core.Params, tou tariff.TimeOfUse) (core.Extractor, error) {
	switch approach {
	case "basic":
		return &core.BasicExtractor{Params: params}, nil
	case "peak":
		return &core.PeakExtractor{Params: params}, nil
	case "random":
		return &core.RandomExtractor{Params: params}, nil
	case "multitariff":
		return &core.MultiTariffExtractor{Params: params, Tariff: tou}, nil
	case "frequency":
		return &core.FrequencyExtractor{Params: params, Registry: appliance.Default()}, nil
	case "schedule":
		return &core.ScheduleExtractor{Params: params, Registry: appliance.Default()}, nil
	default:
		return nil, fmt.Errorf("unknown approach %q", approach)
	}
}

// writeStats renders the registry as JSON to path ("-" = stdout, "" = off).
func writeStats(reg *obs.Registry, path string) error {
	if path == "" {
		return nil
	}
	if path == "-" {
		return reg.WriteJSON(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := reg.WriteJSON(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("write %s: %w", path, werr)
	}
	return nil
}

func run(in, ref, approach string, flexPct float64, seed int64, consumer, offersOut, modifiedOut string, lowStart, lowEnd int, resample time.Duration, statsJSON string) error {
	input, err := readSeries(in)
	if err != nil {
		return fmt.Errorf("read %s: %w", in, err)
	}
	if resample > 0 {
		input, err = input.ResampleTo(resample)
		if err != nil {
			return fmt.Errorf("resample: %w", err)
		}
	}

	params := core.DefaultParams()
	params.FlexPercentage = flexPct
	params.Seed = seed
	params.ConsumerID = consumer

	tou := tariff.TimeOfUse{HighPrice: 0.40, LowPrice: 0.15, LowStartHour: lowStart, LowEndHour: lowEnd}
	ex, err := buildExtractor(approach, params, tou)
	if err != nil {
		return err
	}
	var result *core.Result
	if mt, ok := ex.(*core.MultiTariffExtractor); ok {
		if ref == "" {
			return fmt.Errorf("approach multitariff needs -ref (one-tariff series)")
		}
		reference, err := readSeries(ref)
		if err != nil {
			return fmt.Errorf("read %s: %w", ref, err)
		}
		result, err = mt.ExtractPair(reference, input)
		if err != nil {
			return err
		}
	} else {
		result, err = ex.Extract(input)
		if err != nil {
			return err
		}
	}

	if err := writeResult(result, offersOut, modifiedOut); err != nil {
		return err
	}

	fmt.Printf("%s: %d offers, %.3f kWh flexible (%.2f%% of input), modified series %.3f kWh\n",
		approach, len(result.Offers), result.Offers.TotalAvgEnergy(),
		result.Offers.TotalAvgEnergy()/input.Total()*100, result.Modified.Total())
	fmt.Printf("wrote %s and %s\n", offersOut, modifiedOut)

	reg := obs.NewRegistry()
	reg.NewGauge("flexextract_offers", "Flex-offers extracted by this run.").Set(int64(len(result.Offers)))
	reg.NewGaugeFunc("flexextract_flexible_kwh", "Flexible energy extracted, in kWh.", result.Offers.TotalAvgEnergy)
	reg.NewGaugeFunc("flexextract_modified_kwh", "Total energy left in the modified series, in kWh.", result.Modified.Total)
	return writeStats(reg, statsJSON)
}

// writeResult writes an extraction's offers (JSON) and modified series (CSV).
func writeResult(result *core.Result, offersOut, modifiedOut string) error {
	of, err := os.Create(offersOut)
	if err != nil {
		return err
	}
	werr := result.Offers.WriteJSON(of)
	if cerr := of.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("write %s: %w", offersOut, werr)
	}
	mf, err := os.Create(modifiedOut)
	if err != nil {
		return err
	}
	werr = result.Modified.WriteCSV(mf)
	if cerr := mf.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("write %s: %w", modifiedOut, werr)
	}
	return nil
}

// runBatch extracts every *.csv under indir concurrently through the
// pipeline, writing per-series outputs into outdir.
func runBatch(indir, outdir, ref, approach string, flexPct float64, seed int64, jobsN int, lowStart, lowEnd int, resample time.Duration, statsJSON string) error {
	all, err := filepath.Glob(filepath.Join(indir, "*.csv"))
	if err != nil {
		return err
	}
	// Skip our own outputs: outdir defaults to indir, so without this a
	// second run would re-extract the *.modified.csv files it wrote.
	files := all[:0]
	for _, path := range all {
		if !strings.HasSuffix(path, ".modified.csv") {
			files = append(files, path)
		}
	}
	sort.Strings(files)
	if len(files) == 0 {
		return fmt.Errorf("no *.csv files under %s", indir)
	}
	if outdir == "" {
		outdir = indir
	}
	if err := os.MkdirAll(outdir, 0o755); err != nil {
		return err
	}

	tou := tariff.TimeOfUse{HighPrice: 0.40, LowPrice: 0.15, LowStartHour: lowStart, LowEndHour: lowEnd}
	var refSeries *timeseries.Series
	if approach == "multitariff" {
		if ref == "" {
			return fmt.Errorf("approach multitariff needs -ref (one-tariff series shared by the batch)")
		}
		if refSeries, err = readSeries(ref); err != nil {
			return fmt.Errorf("read %s: %w", ref, err)
		}
	}
	// Per-series deterministic seeds: base seed + batch index, so results
	// are independent of worker count and scheduling.
	seedOf := make(map[string]int64, len(files))
	for i, path := range files {
		id := strings.TrimSuffix(filepath.Base(path), ".csv")
		if _, dup := seedOf[id]; dup {
			return fmt.Errorf("duplicate series name %q under %s", id, indir)
		}
		seedOf[id] = seed + int64(i)
	}
	reg := obs.NewRegistry()
	telemetry := pipeline.NewTelemetry(reg)
	readErrGauge := reg.NewGauge("flexextract_read_errors", "Input CSVs that could not be read.")
	reg.NewGauge("flexextract_series_total", "Input CSVs discovered in the batch.").Set(int64(len(files)))

	cfg := pipeline.Config{
		Workers:   jobsN,
		Telemetry: telemetry,
		NewExtractor: func(j pipeline.Job) core.Extractor {
			params := core.DefaultParams()
			params.FlexPercentage = flexPct
			params.Seed = seedOf[j.ID]
			params.ConsumerID = j.ID
			ex, err := buildExtractor(approach, params, tou)
			if err != nil {
				return nil // rejected per job by the pipeline
			}
			return ex
		},
	}
	// Validate the approach once up front rather than failing every job.
	if _, err := buildExtractor(approach, core.DefaultParams(), tou); err != nil {
		return err
	}

	// Feeder: read CSVs sequentially, fan extraction out to the workers.
	// Unreadable files are collected and reported without sinking the rest
	// of the batch.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	type readError struct {
		path string
		err  error
	}
	var readErrs []readError
	ch := make(chan pipeline.Job)
	go func() {
		defer close(ch)
		for _, path := range files {
			series, err := readSeries(path)
			if err == nil && resample > 0 {
				series, err = series.ResampleTo(resample)
			}
			if err != nil {
				readErrs = append(readErrs, readError{path, err})
				continue
			}
			job := pipeline.Job{ID: strings.TrimSuffix(filepath.Base(path), ".csv"), Series: series}
			if refSeries != nil {
				job.Reference = refSeries.Clone()
			}
			select {
			case ch <- job:
			case <-ctx.Done():
				return
			}
		}
	}()

	sink := pipeline.SinkFunc(func(_ context.Context, out pipeline.Output) error {
		return writeResult(out.Result,
			filepath.Join(outdir, out.JobID+".offers.json"),
			filepath.Join(outdir, out.JobID+".modified.csv"))
	})
	stats, err := pipeline.Run(ctx, cfg, ch, sink)
	if err != nil {
		return err
	}
	// A nil error means the jobs channel was drained to close, so the
	// feeder goroutine has finished and readErrs is quiescent.
	for _, re := range readErrs {
		fmt.Fprintf(os.Stderr, "flexextract: read %s: %v\n", re.path, re.err)
	}
	for _, je := range stats.JobErrors {
		fmt.Fprintf(os.Stderr, "flexextract: %v\n", je)
	}
	fmt.Printf("%s batch: %d/%d series, %d offers, %d errors, wall %v, busy %v, speedup %.2fx (%d workers)\n",
		approach, stats.SeriesProcessed, len(files), stats.OffersEmitted,
		stats.Errors+len(readErrs), stats.Wall.Round(time.Millisecond),
		stats.Busy.Round(time.Millisecond), stats.Speedup(), stats.Workers)
	fmt.Printf("wrote per-series offers and modified series under %s\n", outdir)
	readErrGauge.Set(int64(len(readErrs)))
	if err := writeStats(reg, statsJSON); err != nil {
		return err
	}
	if failed := stats.Errors + len(readErrs); failed > 0 {
		return fmt.Errorf("%d of %d series failed", failed, len(files))
	}
	return nil
}
