package main

import (
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/flexoffer"
	"repro/internal/timeseries"
)

// writeSyntheticCSV writes a peaky household week at 15-minute resolution.
func writeSyntheticCSV(t *testing.T, path string, days int, res time.Duration) *timeseries.Series {
	t.Helper()
	perDay := int((24 * time.Hour) / res)
	vals := make([]float64, days*perDay)
	for i := range vals {
		frac := float64(i%perDay) / float64(perDay) * 24
		vals[i] = 0.2 + 0.6*math.Exp(-(frac-19)*(frac-19)/6)
	}
	s := timeseries.MustNew(time.Date(2012, 6, 4, 0, 0, 0, 0, time.UTC), res, vals)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := s.WriteCSV(f); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRunConsumptionApproaches(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "house.csv")
	input := writeSyntheticCSV(t, in, 7, 15*time.Minute)

	for _, approach := range []string{"basic", "peak", "random"} {
		offers := filepath.Join(dir, approach+"-offers.json")
		modified := filepath.Join(dir, approach+"-modified.csv")
		if err := run(in, "", approach, 0.05, 1, "c1", offers, modified, 22, 6, 0); err != nil {
			t.Fatalf("%s: %v", approach, err)
		}
		of, err := os.Open(offers)
		if err != nil {
			t.Fatal(err)
		}
		set, err := flexoffer.ReadJSON(of)
		of.Close()
		if err != nil {
			t.Fatalf("%s offers: %v", approach, err)
		}
		if len(set) == 0 {
			t.Fatalf("%s extracted nothing", approach)
		}
		for _, f := range set {
			if f.ConsumerID != "c1" {
				t.Errorf("%s: consumer = %q", approach, f.ConsumerID)
			}
		}
		mf, err := os.Open(modified)
		if err != nil {
			t.Fatal(err)
		}
		mod, err := timeseries.ReadCSV(mf)
		mf.Close()
		if err != nil {
			t.Fatalf("%s modified: %v", approach, err)
		}
		// Accounting survives the round trip through files.
		if math.Abs(mod.Total()+set.TotalAvgEnergy()-input.Total()) > 1e-6 {
			t.Errorf("%s accounting broken after round trip", approach)
		}
	}
}

func TestRunMultiTariff(t *testing.T) {
	dir := t.TempDir()
	ref := filepath.Join(dir, "flat.csv")
	in := filepath.Join(dir, "multi.csv")
	writeSyntheticCSV(t, ref, 7, 15*time.Minute)
	writeSyntheticCSV(t, in, 7, 15*time.Minute)
	offers := filepath.Join(dir, "offers.json")
	modified := filepath.Join(dir, "modified.csv")
	if err := run(in, ref, "multitariff", 0.05, 1, "", offers, modified, 22, 6, 0); err != nil {
		t.Fatalf("multitariff: %v", err)
	}
	// Missing reference is an error.
	if err := run(in, "", "multitariff", 0.05, 1, "", offers, modified, 22, 6, 0); err == nil {
		t.Error("multitariff without -ref accepted")
	}
}

func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "house.csv")
	writeSyntheticCSV(t, in, 2, 15*time.Minute)
	offers := filepath.Join(dir, "o.json")
	modified := filepath.Join(dir, "m.csv")
	if err := run(in, "", "no-such-approach", 0.05, 1, "", offers, modified, 22, 6, 0); err == nil {
		t.Error("unknown approach accepted")
	}
	if err := run(filepath.Join(dir, "missing.csv"), "", "peak", 0.05, 1, "", offers, modified, 22, 6, 0); err == nil {
		t.Error("missing input accepted")
	}
}

func TestRunResampleFlag(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "fine.csv")
	writeSyntheticCSV(t, in, 2, 5*time.Minute)
	offers := filepath.Join(dir, "o.json")
	modified := filepath.Join(dir, "m.csv")
	// Peak extraction requires 15-minute slices; resampling makes the
	// 5-minute input usable.
	if err := run(in, "", "peak", 0.05, 1, "", offers, modified, 22, 6, 0); err == nil {
		t.Error("5-minute input accepted without resampling")
	}
	if err := run(in, "", "peak", 0.05, 1, "", offers, modified, 22, 6, 15*time.Minute); err != nil {
		t.Errorf("resampled run: %v", err)
	}
	mf, err := os.Open(modified)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := timeseries.ReadCSV(mf)
	mf.Close()
	if err != nil {
		t.Fatal(err)
	}
	if mod.Resolution() != 15*time.Minute {
		t.Errorf("modified resolution = %v", mod.Resolution())
	}
}
