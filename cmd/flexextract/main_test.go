package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/flexoffer"
	"repro/internal/timeseries"
)

// writeSyntheticCSV writes a peaky household week at 15-minute resolution.
func writeSyntheticCSV(t *testing.T, path string, days int, res time.Duration) *timeseries.Series {
	t.Helper()
	perDay := int((24 * time.Hour) / res)
	vals := make([]float64, days*perDay)
	for i := range vals {
		frac := float64(i%perDay) / float64(perDay) * 24
		vals[i] = 0.2 + 0.6*math.Exp(-(frac-19)*(frac-19)/6)
	}
	s := timeseries.MustNew(time.Date(2012, 6, 4, 0, 0, 0, 0, time.UTC), res, vals)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := s.WriteCSV(f); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRunConsumptionApproaches(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "house.csv")
	input := writeSyntheticCSV(t, in, 7, 15*time.Minute)

	for _, approach := range []string{"basic", "peak", "random"} {
		offers := filepath.Join(dir, approach+"-offers.json")
		modified := filepath.Join(dir, approach+"-modified.csv")
		if err := run(in, "", approach, 0.05, 1, "c1", offers, modified, 22, 6, 0, ""); err != nil {
			t.Fatalf("%s: %v", approach, err)
		}
		of, err := os.Open(offers)
		if err != nil {
			t.Fatal(err)
		}
		set, err := flexoffer.ReadJSON(of)
		of.Close()
		if err != nil {
			t.Fatalf("%s offers: %v", approach, err)
		}
		if len(set) == 0 {
			t.Fatalf("%s extracted nothing", approach)
		}
		for _, f := range set {
			if f.ConsumerID != "c1" {
				t.Errorf("%s: consumer = %q", approach, f.ConsumerID)
			}
		}
		mf, err := os.Open(modified)
		if err != nil {
			t.Fatal(err)
		}
		mod, err := timeseries.ReadCSV(mf)
		mf.Close()
		if err != nil {
			t.Fatalf("%s modified: %v", approach, err)
		}
		// Accounting survives the round trip through files.
		if math.Abs(mod.Total()+set.TotalAvgEnergy()-input.Total()) > 1e-6 {
			t.Errorf("%s accounting broken after round trip", approach)
		}
	}
}

func TestRunMultiTariff(t *testing.T) {
	dir := t.TempDir()
	ref := filepath.Join(dir, "flat.csv")
	in := filepath.Join(dir, "multi.csv")
	writeSyntheticCSV(t, ref, 7, 15*time.Minute)
	writeSyntheticCSV(t, in, 7, 15*time.Minute)
	offers := filepath.Join(dir, "offers.json")
	modified := filepath.Join(dir, "modified.csv")
	if err := run(in, ref, "multitariff", 0.05, 1, "", offers, modified, 22, 6, 0, ""); err != nil {
		t.Fatalf("multitariff: %v", err)
	}
	// Missing reference is an error.
	if err := run(in, "", "multitariff", 0.05, 1, "", offers, modified, 22, 6, 0, ""); err == nil {
		t.Error("multitariff without -ref accepted")
	}
}

func TestRunBatch(t *testing.T) {
	indir := t.TempDir()
	outdir := t.TempDir()
	const n = 6
	inputs := make(map[string]*timeseries.Series, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("house-%02d", i)
		inputs[name] = writeSyntheticCSV(t, filepath.Join(indir, name+".csv"), 3, 15*time.Minute)
	}
	if err := runBatch(indir, outdir, "", "peak", 0.05, 1, 4, 22, 6, 0, ""); err != nil {
		t.Fatalf("batch: %v", err)
	}
	for name, input := range inputs {
		of, err := os.Open(filepath.Join(outdir, name+".offers.json"))
		if err != nil {
			t.Fatalf("%s offers missing: %v", name, err)
		}
		set, err := flexoffer.ReadJSON(of)
		of.Close()
		if err != nil {
			t.Fatalf("%s offers: %v", name, err)
		}
		if len(set) == 0 {
			t.Fatalf("%s extracted nothing", name)
		}
		for _, f := range set {
			if f.ConsumerID != name {
				t.Errorf("%s: consumer = %q", name, f.ConsumerID)
			}
			if !strings.HasPrefix(f.ID, name+"/") {
				t.Errorf("%s: offer ID %q not qualified with the series name", name, f.ID)
			}
		}
		mf, err := os.Open(filepath.Join(outdir, name+".modified.csv"))
		if err != nil {
			t.Fatalf("%s modified missing: %v", name, err)
		}
		mod, err := timeseries.ReadCSV(mf)
		mf.Close()
		if err != nil {
			t.Fatalf("%s modified: %v", name, err)
		}
		if math.Abs(mod.Total()+set.TotalAvgEnergy()-input.Total()) > 1e-6 {
			t.Errorf("%s accounting broken after round trip", name)
		}
	}
}

func TestRunBatchDeterministicAcrossWorkerCounts(t *testing.T) {
	indir := t.TempDir()
	for i := 0; i < 4; i++ {
		writeSyntheticCSV(t, filepath.Join(indir, fmt.Sprintf("h%d.csv", i)), 2, 15*time.Minute)
	}
	read := func(dir string) map[string]string {
		out := make(map[string]string)
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			b, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			out[e.Name()] = string(b)
		}
		return out
	}
	out1, out4 := t.TempDir(), t.TempDir()
	if err := runBatch(indir, out1, "", "basic", 0.05, 7, 1, 22, 6, 0, ""); err != nil {
		t.Fatal(err)
	}
	if err := runBatch(indir, out4, "", "basic", 0.05, 7, 4, 22, 6, 0, ""); err != nil {
		t.Fatal(err)
	}
	a, b := read(out1), read(out4)
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("output file counts differ: %d vs %d", len(a), len(b))
	}
	for name, content := range a {
		if b[name] != content {
			t.Errorf("%s differs between -jobs 1 and -jobs 4", name)
		}
	}
}

func TestRunBatchReportsBadSeries(t *testing.T) {
	indir := t.TempDir()
	writeSyntheticCSV(t, filepath.Join(indir, "good.csv"), 2, 15*time.Minute)
	if err := os.WriteFile(filepath.Join(indir, "bad.csv"), []byte("not,a,series\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := runBatch(indir, t.TempDir(), "", "peak", 0.05, 1, 2, 22, 6, 0, "")
	if err == nil {
		t.Fatal("batch with unreadable series reported success")
	}
	if !strings.Contains(err.Error(), "1 of 2") {
		t.Fatalf("err = %v, want partial-failure summary", err)
	}
}

// TestRunBatchSkipsOwnOutputs re-runs a batch with outdir defaulted to the
// input directory: the second run must not ingest the *.modified.csv files
// the first run wrote there.
func TestRunBatchSkipsOwnOutputs(t *testing.T) {
	dir := t.TempDir()
	for i := 0; i < 3; i++ {
		writeSyntheticCSV(t, filepath.Join(dir, fmt.Sprintf("house-%d.csv", i)), 2, 15*time.Minute)
	}
	for run := 0; run < 2; run++ {
		if err := runBatch(dir, "", "", "peak", 0.05, 1, 2, 22, 6, 0, ""); err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
	}
	offers, err := filepath.Glob(filepath.Join(dir, "*.offers.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(offers) != 3 {
		t.Fatalf("got %d offer files, want 3 (modified.csv re-ingested?)", len(offers))
	}
	if _, err := os.Stat(filepath.Join(dir, "house-0.modified.modified.csv")); err == nil {
		t.Fatal("second run extracted from a modified series")
	}
}

func TestRunBatchEmptyDir(t *testing.T) {
	if err := runBatch(t.TempDir(), "", "", "peak", 0.05, 1, 2, 22, 6, 0, ""); err == nil {
		t.Fatal("empty batch directory accepted")
	}
}

func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "house.csv")
	writeSyntheticCSV(t, in, 2, 15*time.Minute)
	offers := filepath.Join(dir, "o.json")
	modified := filepath.Join(dir, "m.csv")
	if err := run(in, "", "no-such-approach", 0.05, 1, "", offers, modified, 22, 6, 0, ""); err == nil {
		t.Error("unknown approach accepted")
	}
	if err := run(filepath.Join(dir, "missing.csv"), "", "peak", 0.05, 1, "", offers, modified, 22, 6, 0, ""); err == nil {
		t.Error("missing input accepted")
	}
}

func TestRunResampleFlag(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "fine.csv")
	writeSyntheticCSV(t, in, 2, 5*time.Minute)
	offers := filepath.Join(dir, "o.json")
	modified := filepath.Join(dir, "m.csv")
	// Peak extraction requires 15-minute slices; resampling makes the
	// 5-minute input usable.
	if err := run(in, "", "peak", 0.05, 1, "", offers, modified, 22, 6, 0, ""); err == nil {
		t.Error("5-minute input accepted without resampling")
	}
	if err := run(in, "", "peak", 0.05, 1, "", offers, modified, 22, 6, 15*time.Minute, ""); err != nil {
		t.Errorf("resampled run: %v", err)
	}
	mf, err := os.Open(modified)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := timeseries.ReadCSV(mf)
	mf.Close()
	if err != nil {
		t.Fatal(err)
	}
	if mod.Resolution() != 15*time.Minute {
		t.Errorf("modified resolution = %v", mod.Resolution())
	}
}

// TestStatsJSON checks -stats-json emits the obs registry: pipeline
// counters for batch runs, extraction gauges for single runs.
func TestStatsJSON(t *testing.T) {
	indir := t.TempDir()
	for i := 0; i < 3; i++ {
		writeSyntheticCSV(t, filepath.Join(indir, fmt.Sprintf("h%d.csv", i)), 2, 15*time.Minute)
	}
	stats := filepath.Join(t.TempDir(), "stats.json")
	if err := runBatch(indir, t.TempDir(), "", "peak", 0.05, 1, 2, 22, 6, 0, stats); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(stats)
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatalf("stats not valid JSON: %v\n%s", err, b)
	}
	if got := out["pipeline_jobs_succeeded_total"]; got != float64(3) {
		t.Errorf("pipeline_jobs_succeeded_total = %v, want 3", got)
	}
	if got := out["flexextract_series_total"]; got != float64(3) {
		t.Errorf("flexextract_series_total = %v, want 3", got)
	}
	if _, ok := out["pipeline_extract_seconds"]; !ok {
		t.Error("stats missing pipeline_extract_seconds histogram")
	}

	// Single-series mode writes its own gauges.
	single := filepath.Join(t.TempDir(), "single.json")
	in := filepath.Join(indir, "h0.csv")
	offers := filepath.Join(t.TempDir(), "o.json")
	modified := filepath.Join(t.TempDir(), "m.csv")
	if err := run(in, "", "peak", 0.05, 1, "", offers, modified, 22, 6, 0, single); err != nil {
		t.Fatal(err)
	}
	b, err = os.ReadFile(single)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatalf("single stats not valid JSON: %v", err)
	}
	if n, ok := out["flexextract_offers"].(float64); !ok || n <= 0 {
		t.Errorf("flexextract_offers = %v, want > 0", out["flexextract_offers"])
	}
}
