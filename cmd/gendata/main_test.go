package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/timeseries"
)

func TestRunWritesCSVsAndGroundTruth(t *testing.T) {
	dir := t.TempDir()
	if err := run(dir, 3, 2, "15m", 1, "2012-06-04", 0); err != nil {
		t.Fatalf("run: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var csvs, jsons int
	for _, e := range entries {
		switch filepath.Ext(e.Name()) {
		case ".csv":
			csvs++
			f, err := os.Open(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			s, err := timeseries.ReadCSV(f)
			f.Close()
			if err != nil {
				t.Fatalf("%s: %v", e.Name(), err)
			}
			if s.Len() != 2*96 {
				t.Errorf("%s: %d intervals, want %d", e.Name(), s.Len(), 2*96)
			}
		case ".json":
			jsons++
		}
	}
	if csvs != 3 || jsons != 1 {
		t.Errorf("files: %d csv, %d json; want 3 and 1", csvs, jsons)
	}

	data, err := os.ReadFile(filepath.Join(dir, "ground_truth.json"))
	if err != nil {
		t.Fatal(err)
	}
	var truth []activationJSON
	if err := json.Unmarshal(data, &truth); err != nil {
		t.Fatalf("ground truth: %v", err)
	}
	if len(truth) == 0 {
		t.Error("no ground-truth activations")
	}
	for _, a := range truth {
		if a.Household == "" || a.Appliance == "" || a.EnergyKWh <= 0 {
			t.Errorf("incomplete activation %+v", a)
		}
	}
}

func TestRunWithTariffShift(t *testing.T) {
	dir := t.TempDir()
	if err := run(dir, 2, 7, "15m", 2, "2012-06-04", 0.9); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "ground_truth.json"))
	if err != nil {
		t.Fatal(err)
	}
	var truth []activationJSON
	if err := json.Unmarshal(data, &truth); err != nil {
		t.Fatal(err)
	}
	var shifted int
	for _, a := range truth {
		if a.Shifted {
			shifted++
		}
	}
	if shifted == 0 {
		t.Error("tariff shift produced no shifted activations")
	}
}

func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	if err := run(dir, 1, 1, "not-a-duration", 1, "2012-06-04", 0); err == nil {
		t.Error("bad resolution accepted")
	}
	if err := run(dir, 1, 1, "15m", 1, "not-a-date", 0); err == nil {
		t.Error("bad start date accepted")
	}
	if err := run(dir, 1, 0, "15m", 1, "2012-06-04", 0); err == nil {
		t.Error("zero days accepted")
	}
}
