// Command gendata synthesises household consumption data — the stand-in for
// the real-world series the paper extracts flexibilities from. It writes
// one CSV per household (timestamp,kwh) plus a ground-truth activations
// JSON that extraction quality can be scored against.
//
// Usage:
//
//	gendata -out data/ -households 10 -days 28 -res 15m
//	gendata -out data/ -households 1 -days 28 -res 1m -tariff-shift 0.8
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/appliance"
	"repro/internal/household"
	"repro/internal/tariff"
)

func main() {
	out := flag.String("out", "data", "output directory")
	households := flag.Int("households", 5, "number of households")
	days := flag.Int("days", 28, "days to simulate")
	resStr := flag.String("res", "15m", "series resolution (whole minutes dividing 24h)")
	seed := flag.Int64("seed", 1, "population seed")
	start := flag.String("start", "2012-06-04", "first day (YYYY-MM-DD)")
	tariffShift := flag.Float64("tariff-shift", 0,
		"if > 0, bill households with a 22:00-06:00 time-of-use tariff and shift flexible runs with this probability")
	flag.Parse()

	if err := run(*out, *households, *days, *resStr, *seed, *start, *tariffShift); err != nil {
		fmt.Fprintf(os.Stderr, "gendata: %v\n", err)
		os.Exit(1)
	}
}

// activationJSON is the ground-truth wire format.
type activationJSON struct {
	Household string    `json:"household"`
	Appliance string    `json:"appliance"`
	Start     time.Time `json:"start"`
	Duration  string    `json:"duration"`
	EnergyKWh float64   `json:"energy_kwh"`
	Flexible  bool      `json:"flexible"`
	Shifted   bool      `json:"shifted"`
}

func run(out string, households, days int, resStr string, seed int64, start string, tariffShift float64) error {
	resolution, err := time.ParseDuration(resStr)
	if err != nil {
		return fmt.Errorf("bad -res: %w", err)
	}
	day0, err := time.Parse("2006-01-02", start)
	if err != nil {
		return fmt.Errorf("bad -start: %w", err)
	}
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}

	reg := appliance.Default()
	cfgs := household.Population(households, seed)
	if tariffShift > 0 {
		tou := tariff.TimeOfUse{HighPrice: 0.40, LowPrice: 0.15, LowStartHour: 22, LowEndHour: 6}
		for i := range cfgs {
			cfgs[i].Tariff = tou
			cfgs[i].Response = tariff.Response{ShiftProbability: tariffShift}
		}
	}

	var truth []activationJSON
	for _, cfg := range cfgs {
		r, err := household.Simulate(reg, cfg, day0, days, resolution)
		if err != nil {
			return fmt.Errorf("simulate %s: %w", cfg.ID, err)
		}
		path := filepath.Join(out, cfg.ID+".csv")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		werr := r.Total.WriteCSV(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return fmt.Errorf("write %s: %w", path, werr)
		}
		for _, a := range r.Activations {
			truth = append(truth, activationJSON{
				Household: cfg.ID, Appliance: a.Appliance, Start: a.Start,
				Duration: a.Duration.String(), EnergyKWh: a.Energy,
				Flexible: a.Flexible, Shifted: a.Shifted,
			})
		}
		fmt.Printf("wrote %s (%d intervals, %.1f kWh, %d activations)\n",
			path, r.Total.Len(), r.Total.Total(), len(r.Activations))
	}

	truthPath := filepath.Join(out, "ground_truth.json")
	tf, err := os.Create(truthPath)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(tf)
	enc.SetIndent("", "  ")
	werr := enc.Encode(truth)
	if cerr := tf.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("write %s: %w", truthPath, werr)
	}
	fmt.Printf("wrote %s (%d activations)\n", truthPath, len(truth))
	return nil
}
