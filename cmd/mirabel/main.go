// Command mirabel runs the end-to-end MIRABEL evaluation pipeline the
// flex-offer concept exists for: simulate a household population, extract
// flex-offers from each household's consumption, aggregate them, schedule
// the aggregates against simulated wind production, and report the
// imbalance reduction relative to the no-flexibility baseline.
//
// Usage:
//
//	mirabel -households 100 -days 7 -approach peak -flexpct 0.05
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/agg"
	"repro/internal/appliance"
	"repro/internal/core"
	"repro/internal/flexoffer"
	"repro/internal/household"
	"repro/internal/res"
	"repro/internal/sched"
	"repro/internal/timeseries"
)

func main() {
	households := flag.Int("households", 100, "population size")
	days := flag.Int("days", 7, "horizon in days")
	approach := flag.String("approach", "peak", "basic | peak | random")
	flexPct := flag.Float64("flexpct", 0.05, "flexible share parameter")
	seed := flag.Int64("seed", 12, "simulation seed")
	passes := flag.Int("passes", 2, "scheduler refinement passes")
	windScale := flag.Float64("wind-scale", 1.6, "wind farm rated power as multiple of average population load")
	flag.Parse()

	if err := run(*households, *days, *approach, *flexPct, *seed, *passes, *windScale); err != nil {
		fmt.Fprintf(os.Stderr, "mirabel: %v\n", err)
		os.Exit(1)
	}
}

func run(households, days int, approach string, flexPct float64, seed int64, passes int, windScale float64) error {
	start := time.Date(2012, 6, 4, 0, 0, 0, 0, time.UTC)
	reg := appliance.Default()

	fmt.Printf("simulating %d households x %d days ...\n", households, days)
	cfgs := household.Population(households, seed)
	results, popTotal, err := household.SimulatePopulation(reg, cfgs, start, days, 15*time.Minute)
	if err != nil {
		return err
	}
	fmt.Printf("population consumption: %.0f kWh total, %.1f kWh avg/interval peak-to-average %.2f\n",
		popTotal.Total(), popTotal.Mean(), popTotal.PeakToAverage())

	fmt.Printf("extracting flex-offers (%s, %.1f%%) ...\n", approach, flexPct*100)
	var all flexoffer.Set
	var inflexParts []*timeseries.Series
	for i, r := range results {
		p := core.DefaultParams()
		p.FlexPercentage = flexPct
		p.Seed = seed + int64(i)
		p.ConsumerID = r.Config.ID
		var ex core.Extractor
		switch approach {
		case "basic":
			ex = &core.BasicExtractor{Params: p}
		case "peak":
			ex = &core.PeakExtractor{Params: p}
		case "random":
			ex = &core.RandomExtractor{Params: p}
		default:
			return fmt.Errorf("unknown approach %q", approach)
		}
		res, err := ex.Extract(r.Total)
		if err != nil {
			return fmt.Errorf("extract %s: %w", r.Config.ID, err)
		}
		all = append(all, res.Offers...)
		inflexParts = append(inflexParts, res.Modified)
	}
	inflex, err := timeseries.Sum(inflexParts...)
	if err != nil {
		return err
	}
	fmt.Printf("extracted %d offers carrying %.0f kWh (%.2f%% of consumption)\n",
		len(all), all.TotalAvgEnergy(), all.TotalAvgEnergy()/popTotal.Total()*100)

	aggs, err := agg.AggregateSet(all, agg.DefaultParams())
	if err != nil {
		return err
	}
	var aggOffers flexoffer.Set
	for _, a := range aggs {
		aggOffers = append(aggOffers, a.Offer)
	}
	fmt.Printf("aggregated into %d offers (%.1f members each on average)\n",
		len(aggs), float64(agg.TotalMembers(aggs))/float64(len(aggs)))

	turbine := res.DefaultTurbine()
	turbine.RatedPowerKW = popTotal.Mean() / popTotal.Resolution().Hours() * windScale
	supply, err := res.Simulate(res.DefaultWindModel(), turbine, start, days, 15*time.Minute, seed)
	if err != nil {
		return err
	}
	fmt.Printf("wind farm rated %.0f kW produced %.0f kWh\n", turbine.RatedPowerKW, supply.Total())

	baseline, err := sched.Imbalance(popTotal, supply)
	if err != nil {
		return err
	}
	schedule, err := (&sched.Scheduler{Passes: passes}).Schedule(aggOffers, inflex, supply)
	if err != nil {
		return err
	}
	after, err := sched.Imbalance(schedule.Demand, supply)
	if err != nil {
		return err
	}
	naive, err := sched.ScheduleAtEarliest(aggOffers, inflex)
	if err != nil {
		return err
	}
	naiveM, err := sched.Imbalance(naive.Demand, supply)
	if err != nil {
		return err
	}

	fmt.Println()
	fmt.Printf("%-28s %14s %14s %10s\n", "scenario", "unmatched kWh", "spilled kWh", "RMSE")
	fmt.Printf("%-28s %14.0f %14.0f %10.2f\n", "no flexibility", baseline.UnmatchedDemand, baseline.UnusedSupply, baseline.RMSE)
	fmt.Printf("%-28s %14.0f %14.0f %10.2f\n", "offers at earliest start", naiveM.UnmatchedDemand, naiveM.UnusedSupply, naiveM.RMSE)
	fmt.Printf("%-28s %14.0f %14.0f %10.2f\n", "scheduled offers", after.UnmatchedDemand, after.UnusedSupply, after.RMSE)
	fmt.Printf("\nimbalance reduction vs no-flexibility: %.1f%% (skipped offers: %d)\n",
		(baseline.UnmatchedDemand-after.UnmatchedDemand)/baseline.UnmatchedDemand*100, len(schedule.Skipped))
	return nil
}
