package main

import "testing"

func TestRunSmallPipeline(t *testing.T) {
	if err := run(8, 2, "peak", 0.05, 3, 1, 1.5); err != nil {
		t.Fatalf("pipeline: %v", err)
	}
}

func TestRunUnknownApproach(t *testing.T) {
	if err := run(4, 2, "nope", 0.05, 3, 1, 1.5); err == nil {
		t.Error("unknown approach accepted")
	}
}
