package main

import (
	"io"
	"net/http"
	"net/http/pprof"
	"sync/atomic"

	"repro/internal/market"
	"repro/internal/obs"
)

// health tracks the daemon's readiness lifecycle for /readyz: ready
// flips true once startup seeding finishes, draining flips true when
// shutdown begins. A draining daemon answers 503 so load balancers
// steer new traffic away while in-flight requests finish.
type health struct {
	ready    atomic.Bool
	draining atomic.Bool
}

// opsRoutes is the inventory of mirabeld's operational endpoints, mounted
// next to the market API by newHandler. Together with market.Routes it is
// the route list docs/API.md must cover (TestAPIDocCoversAllRoutes).
func opsRoutes(pprofOn bool) []market.Route {
	routes := []market.Route{
		{Method: http.MethodGet, Pattern: "/metrics", Summary: "Prometheus text exposition (?format=json for JSON)"},
		{Method: http.MethodGet, Pattern: "/healthz", Summary: "liveness probe"},
		{Method: http.MethodGet, Pattern: "/readyz", Summary: "readiness probe (503 until seeding finishes and again once draining)"},
	}
	if pprofOn {
		routes = append(routes, market.Route{Method: http.MethodGet, Pattern: "/debug/pprof/", Summary: "net/http/pprof profiles (behind -pprof)"})
	}
	return routes
}

// schedRoutes is the inventory of the scheduling API (internal/sched),
// mounted by newHandler and documented in docs/API.md alongside the
// market and ops routes.
func schedRoutes() []market.Route {
	return []market.Route{
		{Method: http.MethodGet, Pattern: "/aggregates", Summary: "current incremental aggregation (?limit= caps the list)"},
		{Method: http.MethodGet, Pattern: "/schedule", Summary: "scheduler status: counters, last run, recent history"},
		{Method: http.MethodPost, Pattern: "/schedule/run", Summary: "execute one scheduling round now"},
	}
}

// kpiRoutes is the inventory of the KPI API (internal/kpi), mounted by
// newHandler and documented in docs/API.md alongside the market,
// scheduling and ops routes.
func kpiRoutes() []market.Route {
	return []market.Route{
		{Method: http.MethodGet, Pattern: "/kpi", Summary: "flexibility KPI report (?owner= selects one owner, ?owners=false drops the breakdown)"},
	}
}

// newHandler assembles the daemon's full HTTP surface: the flex-offer API
// at the root, the scheduling API (aggregates and scheduling rounds), the
// KPI report, the metrics exposition, the health and readiness probes,
// and — only when pprofOn — the net/http/pprof handlers. Keeping pprof
// behind a flag means a production deployment exposes no profiling
// endpoints unless explicitly asked to. schedAPI and kpiAPI may be nil,
// which leaves those routes unmounted (test fixtures that only exercise
// ops endpoints).
func newHandler(api, schedAPI, kpiAPI http.Handler, reg *obs.Registry, h *health, pprofOn bool) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", api)
	if schedAPI != nil {
		mux.Handle("/aggregates", schedAPI)
		mux.Handle("/schedule", schedAPI)
		mux.Handle("/schedule/", schedAPI)
	}
	if kpiAPI != nil {
		mux.Handle("/kpi", kpiAPI)
	}
	mux.Handle("/metrics", reg.Handler())
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		probe(w, r, http.StatusOK, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		switch {
		case h.draining.Load():
			probe(w, r, http.StatusServiceUnavailable, "draining")
		case !h.ready.Load():
			probe(w, r, http.StatusServiceUnavailable, "seeding")
		default:
			probe(w, r, http.StatusOK, "ready")
		}
	})
	if pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// probe answers a health-style GET with a one-word plain-text body.
func probe(w http.ResponseWriter, r *http.Request, status int, body string) {
	if r.Method != http.MethodGet {
		w.WriteHeader(http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(status)
	_, _ = io.WriteString(w, body+"\n")
}
