package main

import (
	"io"
	"net/http"
	"net/http/pprof"
	"sync/atomic"

	"repro/internal/market"
	"repro/internal/obs"
)

// opsRoutes is the inventory of mirabeld's operational endpoints, mounted
// next to the market API by newHandler. Together with market.Routes it is
// the route list docs/API.md must cover (TestAPIDocCoversAllRoutes).
func opsRoutes(pprofOn bool) []market.Route {
	routes := []market.Route{
		{Method: http.MethodGet, Pattern: "/metrics", Summary: "Prometheus text exposition (?format=json for JSON)"},
		{Method: http.MethodGet, Pattern: "/healthz", Summary: "liveness probe"},
		{Method: http.MethodGet, Pattern: "/readyz", Summary: "readiness probe (503 until seeding finishes)"},
	}
	if pprofOn {
		routes = append(routes, market.Route{Method: http.MethodGet, Pattern: "/debug/pprof/", Summary: "net/http/pprof profiles (behind -pprof)"})
	}
	return routes
}

// newHandler assembles the daemon's full HTTP surface: the flex-offer API
// at the root, the metrics exposition, the health and readiness probes,
// and — only when pprofOn — the net/http/pprof handlers. Keeping pprof
// behind a flag means a production deployment exposes no profiling
// endpoints unless explicitly asked to.
func newHandler(api http.Handler, reg *obs.Registry, ready *atomic.Bool, pprofOn bool) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", api)
	mux.Handle("/metrics", reg.Handler())
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		probe(w, r, http.StatusOK, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if ready.Load() {
			probe(w, r, http.StatusOK, "ready")
		} else {
			probe(w, r, http.StatusServiceUnavailable, "seeding")
		}
	})
	if pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// probe answers a health-style GET with a one-word plain-text body.
func probe(w http.ResponseWriter, r *http.Request, status int, body string) {
	if r.Method != http.MethodGet {
		w.WriteHeader(http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(status)
	_, _ = io.WriteString(w, body+"\n")
}
