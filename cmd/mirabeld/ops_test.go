package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/admission"
	"repro/internal/flexoffer"
	"repro/internal/kpi"
	"repro/internal/market"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/sched"
)

// newOpsHandler builds the daemon's full HTTP surface the way run does,
// returning the pieces tests poke at.
func newOpsHandler(t *testing.T, clock func() time.Time, pprofOn bool) (http.Handler, *market.Store, *obs.Registry, *pipeline.Telemetry, *health) {
	t.Helper()
	store := market.NewStore(clock)
	reg := obs.NewRegistry()
	httpMetrics := obs.NewHTTPMetrics(reg, "mirabeld")
	market.RegisterStoreMetrics(reg, store)
	telemetry := pipeline.NewTelemetry(reg)
	hlt := new(health)
	api := market.NewServer(store, market.WithObservability(httpMetrics, nil))
	svc, err := sched.New(sched.Config{Store: store, Supply: sched.FlatSupply(5), Clock: clock})
	if err != nil {
		t.Fatalf("sched.New: %v", err)
	}
	t.Cleanup(func() { svc.Close() })
	sched.RegisterServiceMetrics(reg, svc)
	schedAPI := obs.Middleware(svc.Handler(), httpMetrics, market.RouteLabel, nil)
	kpiSvc, err := kpi.NewService(kpi.ServiceConfig{Store: store})
	if err != nil {
		t.Fatalf("kpi.NewService: %v", err)
	}
	t.Cleanup(kpiSvc.Close)
	kpi.RegisterServiceMetrics(reg, kpiSvc)
	kpiAPI := obs.Middleware(kpiSvc.Handler(), httpMetrics, market.RouteLabel, nil)
	return newHandler(api, schedAPI, kpiAPI, reg, hlt, pprofOn), store, reg, telemetry, hlt
}

func get(t *testing.T, h http.Handler, path string) (int, string) {
	t.Helper()
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", path, nil))
	body, _ := io.ReadAll(rr.Result().Body)
	return rr.Code, string(body)
}

// TestHealthzVersusReadyz covers the not-yet-seeded window: the daemon is
// alive (healthz 200) from the first request, but not ready (readyz 503)
// until seeding flips the flag.
func TestHealthzVersusReadyz(t *testing.T) {
	h, _, _, _, hlt := newOpsHandler(t, nil, false)

	if code, body := get(t, h, "/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Errorf("/healthz before seed = %d %q, want 200 ok", code, body)
	}
	if code, body := get(t, h, "/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "seeding") {
		t.Errorf("/readyz before seed = %d %q, want 503 seeding", code, body)
	}

	hlt.ready.Store(true)
	if code, body := get(t, h, "/readyz"); code != 200 || !strings.Contains(body, "ready") {
		t.Errorf("/readyz after seed = %d %q, want 200 ready", code, body)
	}

	// Draining flips readiness back to 503 so load balancers stop
	// routing here, while liveness stays 200 for the whole drain.
	hlt.draining.Store(true)
	if code, body := get(t, h, "/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
		t.Errorf("/readyz draining = %d %q, want 503 draining", code, body)
	}
	if code, _ := get(t, h, "/healthz"); code != 200 {
		t.Errorf("/healthz draining = %d, want 200", code)
	}
	hlt.draining.Store(false)

	// Probes are GET-only.
	for _, path := range []string{"/healthz", "/readyz"} {
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest("POST", path, nil))
		if rr.Code != http.StatusMethodNotAllowed {
			t.Errorf("POST %s = %d, want 405", path, rr.Code)
		}
	}
}

// TestMetricsEndToEnd is the acceptance path: seed a store through the
// pipeline, drive a few API requests, then scrape /metrics and require
// request-latency histograms, per-state offer gauges and pipeline job
// counters in the Prometheus text.
func TestMetricsEndToEnd(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"a", "b"} {
		writeHouseCSV(t, filepath.Join(dir, name+".csv"), 3)
	}
	clockAt := seedStart.Add(-48 * time.Hour)
	h, store, _, telemetry, hlt := newOpsHandler(t, func() time.Time { return clockAt }, false)

	if err := seedStore(context.Background(), store, telemetry, nil, nil, nil, dir, "peak", 0.05, 2); err != nil {
		t.Fatal(err)
	}
	hlt.ready.Store(true)

	// A few API requests so the middleware has something to report.
	if code, _ := get(t, h, "/offers"); code != 200 {
		t.Fatalf("GET /offers = %d", code)
	}
	if code, _ := get(t, h, "/stats"); code != 200 {
		t.Fatalf("GET /stats = %d", code)
	}

	code, text := get(t, h, "/metrics")
	if code != 200 {
		t.Fatalf("GET /metrics = %d", code)
	}
	for _, want := range []string{
		// request-latency histograms from the HTTP middleware
		`mirabeld_http_request_seconds_bucket{route="/offers",le="+Inf"} 1`,
		`mirabeld_http_requests_total{route="/offers",method="GET",status="2xx"} 1`,
		`mirabeld_http_requests_total{route="/stats",method="GET",status="2xx"} 1`,
		// per-state offer gauges from the store
		`market_offers{state="offered"}`,
		`market_flexible_energy_kwh`,
		// pipeline job counters from seeding
		`pipeline_jobs_started_total 2`,
		`pipeline_jobs_succeeded_total 2`,
		`pipeline_jobs_failed_total 0`,
		`# TYPE pipeline_extract_seconds histogram`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// The seeded offers really are gauged: the offered count is non-zero.
	if strings.Contains(text, `market_offers{state="offered"} 0`) {
		t.Error("offered gauge is zero after seeding")
	}

	// JSON rendering of the very same registry.
	code, body := get(t, h, "/metrics?format=json")
	if code != 200 || !strings.Contains(body, `"pipeline_jobs_succeeded_total": 2`) {
		t.Errorf("/metrics?format=json = %d %q", code, body)
	}
}

// TestPprofGating: /debug/pprof/ exists only behind -pprof.
func TestPprofGating(t *testing.T) {
	off, _, _, _, _ := newOpsHandler(t, nil, false)
	if code, _ := get(t, off, "/debug/pprof/"); code != http.StatusNotFound {
		t.Errorf("pprof off: /debug/pprof/ = %d, want 404", code)
	}
	on, _, _, _, _ := newOpsHandler(t, nil, true)
	if code, body := get(t, on, "/debug/pprof/"); code != 200 || !strings.Contains(body, "profiles") {
		t.Errorf("pprof on: /debug/pprof/ = %d", code)
	}
}

// TestKPIEndpointEndToEnd drives one offer through its lifecycle against
// the full daemon surface and checks GET /kpi reflects it — counts,
// derived indicators and the kpi_* metric families on /metrics.
func TestKPIEndpointEndToEnd(t *testing.T) {
	now := time.Date(2012, 6, 4, 12, 0, 0, 0, time.UTC)
	h, store, _, _, _ := newOpsHandler(t, func() time.Time { return now }, false)

	earliest := now.Add(2 * time.Hour)
	offer := &flexoffer.FlexOffer{
		ID:            "kpi-1",
		ConsumerID:    "house-kpi",
		EarliestStart: earliest,
		LatestStart:   earliest.Add(time.Hour),
		Profile:       []flexoffer.Slice{{Duration: time.Hour, MinEnergy: 1, MaxEnergy: 3}},
	}
	if err := store.Submit(offer); err != nil {
		t.Fatal(err)
	}
	if err := store.Accept("kpi-1"); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Assign("kpi-1", earliest.Add(time.Hour), []float64{2}); err != nil {
		t.Fatal(err)
	}

	code, body := get(t, h, "/kpi")
	if code != 200 {
		t.Fatalf("GET /kpi = %d: %s", code, body)
	}
	var rep kpi.Report
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatalf("GET /kpi: invalid JSON: %v", err)
	}
	if rep.Global.Submitted != 1 || rep.Global.Assigned != 1 {
		t.Fatalf("global counts off: %+v", rep.Global.Totals)
	}
	if v, ok := rep.Owners["house-kpi"]; !ok || v.AssignedKWh != 2 {
		t.Fatalf("owner breakdown off: %+v", rep.Owners)
	}
	if rep.Global.TimeFlexUse != 1 {
		t.Fatalf("TimeFlexUse = %v, want 1 (shifted to the window edge)", rep.Global.TimeFlexUse)
	}

	if code, body := get(t, h, "/kpi?owner=ghost"); code != 404 || !strings.Contains(body, "error") {
		t.Fatalf("GET /kpi?owner=ghost = %d %s, want 404 envelope", code, body)
	}

	code, body = get(t, h, "/metrics")
	if code != 200 {
		t.Fatalf("GET /metrics = %d", code)
	}
	for _, want := range []string{
		"kpi_offers_submitted_total 1",
		"kpi_offers_assigned_total 1",
		"kpi_assigned_kwh_total 2",
		"kpi_acceptance_precision 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestOverloadStackWiring assembles the handler exactly as run does —
// admission middleware plus the request-timeout layer — and checks the
// daemon-level contract: draining sheds non-ops traffic with 503 and a
// Retry-After hint while the operational probes keep answering.
func TestOverloadStackWiring(t *testing.T) {
	inner, _, reg, _, hlt := newOpsHandler(t, nil, false)
	ctrl := admission.NewController(admission.Config{
		Reads:  admission.Limits{MaxConcurrent: 4, MaxQueue: 4, MaxWait: 50 * time.Millisecond},
		Writes: admission.Limits{MaxConcurrent: 2, MaxQueue: 2, MaxWait: 50 * time.Millisecond},
	})
	admission.RegisterMetrics(reg, ctrl)
	h := admission.WithTimeout(ctrl.Middleware(inner), time.Second,
		func(r *http.Request) bool { return ctrl.ClassOf(r) == admission.ClassOps })
	hlt.ready.Store(true)

	// Normal operation: reads pass through the stack.
	if code, _ := get(t, h, "/stats"); code != 200 {
		t.Fatalf("GET /stats through the stack = %d", code)
	}

	// Drain: non-ops requests shed, probes and metrics stay reachable.
	hlt.draining.Store(true)
	ctrl.BeginDrain()
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("POST", "/offers", strings.NewReader("{}")))
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("POST /offers while draining = %d, want 503", rr.Code)
	}
	if rr.Header().Get("Retry-After") == "" {
		t.Error("drain shed lost its Retry-After header")
	}
	if body := rr.Body.String(); !strings.Contains(body, "draining") {
		t.Errorf("drain shed body %q does not name the reason", body)
	}
	if code, _ := get(t, h, "/healthz"); code != 200 {
		t.Errorf("/healthz while draining = %d, want 200", code)
	}
	if code, body := get(t, h, "/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
		t.Errorf("/readyz while draining = %d %q, want 503 draining", code, body)
	}
	if code, text := get(t, h, "/metrics"); code != 200 || !strings.Contains(text, "admission_draining 1") {
		t.Errorf("/metrics while draining = %d, want 200 with admission_draining 1", code)
	}
}
