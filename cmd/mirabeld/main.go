// Command mirabeld serves the flex-offer collection API — the network face
// of the MIRABEL data-management prototype the paper's extraction tools
// feed ([3]: near real-time flex-offer collection). Offers are submitted,
// accepted/rejected and assigned over HTTP; a background sweeper expires
// offers whose lifecycle deadlines lapse. Both the sweeper and the HTTP
// server shut down cleanly on SIGINT/SIGTERM.
//
// A directory of household CSVs can be bulk-extracted straight into the
// store at startup through the concurrent pipeline (internal/pipeline), so
// a whole portfolio's offers are collected before the first request:
//
//	mirabeld -addr :7654 -sweep 30s -seed-dir data/ -seed-approach peak -seed-jobs 8
//
// Historical datasets carry lifecycle deadlines in the past; -clock pins
// the store's logical clock for such replays:
//
//	mirabeld -seed-dir data/ -clock 2012-06-04T00:00:00Z
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/market"
	"repro/internal/pipeline"
	"repro/internal/timeseries"
)

func main() {
	addr := flag.String("addr", ":7654", "listen address")
	sweep := flag.Duration("sweep", 30*time.Second, "deadline sweep interval (0 disables)")
	clockAt := flag.String("clock", "", "fix the store's logical clock to this RFC3339 time (historical replays; default: live)")
	seedDir := flag.String("seed-dir", "", "bulk-extract every CSV in this directory into the store at startup")
	seedApproach := flag.String("seed-approach", "peak", "extraction approach for -seed-dir (basic | peak | random)")
	seedFlexPct := flag.Float64("seed-flexpct", 0.05, "flexible share for -seed-dir extraction")
	seedJobs := flag.Int("seed-jobs", 0, "worker count for -seed-dir extraction (0 = GOMAXPROCS)")
	flag.Parse()

	var clock func() time.Time
	if *clockAt != "" {
		at, err := time.Parse(time.RFC3339, *clockAt)
		if err != nil {
			log.Fatalf("mirabeld: -clock: %v", err)
		}
		clock = func() time.Time { return at }
	}
	store := market.NewStore(clock)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *seedDir != "" {
		if err := seedStore(ctx, store, *seedDir, *seedApproach, *seedFlexPct, *seedJobs); err != nil {
			log.Fatalf("mirabeld: seed: %v", err)
		}
	}

	if *sweep > 0 {
		go sweeper(ctx, store, *sweep)
	}

	srv := &http.Server{Addr: *addr, Handler: market.NewServer(store)}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Printf("mirabeld: listening on %s\n", *addr)

	select {
	case err := <-errc:
		log.Fatalf("mirabeld: %v", err)
	case <-ctx.Done():
		log.Printf("mirabeld: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Printf("mirabeld: shutdown: %v", err)
		}
	}
}

// sweeper periodically expires overdue offers until the context ends.
func sweeper(ctx context.Context, store *market.Store, interval time.Duration) {
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			if n := store.ExpireOverdue(); n > 0 {
				log.Printf("mirabeld: expired %d overdue offers", n)
			}
		}
	}
}

// seedStore bulk-extracts every *.csv under dir through the concurrent
// pipeline and submits the resulting offers straight into the store.
func seedStore(ctx context.Context, store *market.Store, dir, approach string, flexPct float64, jobs int) error {
	all, err := filepath.Glob(filepath.Join(dir, "*.csv"))
	if err != nil {
		return err
	}
	// Skip flexextract batch outputs that may sit next to the inputs.
	files := all[:0]
	for _, path := range all {
		if !strings.HasSuffix(path, ".modified.csv") {
			files = append(files, path)
		}
	}
	sort.Strings(files)
	if len(files) == 0 {
		return fmt.Errorf("no *.csv files under %s", dir)
	}

	newExtractor := func(params core.Params) (core.Extractor, error) {
		switch approach {
		case "basic":
			return &core.BasicExtractor{Params: params}, nil
		case "peak":
			return &core.PeakExtractor{Params: params}, nil
		case "random":
			return &core.RandomExtractor{Params: params}, nil
		default:
			return nil, fmt.Errorf("unknown seed approach %q", approach)
		}
	}
	if _, err := newExtractor(core.DefaultParams()); err != nil {
		return err
	}

	batch := make([]pipeline.Job, 0, len(files))
	for _, path := range files {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		series, err := timeseries.ReadCSV(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("read %s: %w", path, err)
		}
		batch = append(batch, pipeline.Job{
			ID:     strings.TrimSuffix(filepath.Base(path), ".csv"),
			Series: series,
		})
	}
	seedOf := make(map[string]int64, len(batch))
	for i, j := range batch {
		seedOf[j.ID] = int64(i + 1)
	}

	sink := &pipeline.StoreSink{Store: store}
	cfg := pipeline.Config{
		Workers: jobs,
		NewExtractor: func(j pipeline.Job) core.Extractor {
			params := core.DefaultParams()
			params.FlexPercentage = flexPct
			params.Seed = seedOf[j.ID]
			params.ConsumerID = j.ID
			ex, _ := newExtractor(params)
			return ex
		},
	}
	stats, err := pipeline.RunJobs(ctx, cfg, batch, sink)
	if err != nil {
		return err
	}
	for _, je := range stats.JobErrors {
		log.Printf("mirabeld: seed: %v", je)
	}
	submitted, rejected := sink.Counts()
	log.Printf("mirabeld: seeded %d offers from %d/%d series (%d rejected, %d extraction errors) in %v (%.2fx speedup, %d workers)",
		submitted, stats.SeriesProcessed, len(batch), rejected, stats.Errors,
		stats.Wall.Round(time.Millisecond), stats.Speedup(), stats.Workers)
	if rejected > 0 {
		return fmt.Errorf("%d offers rejected by the store (first: %v); historical data may need -clock", rejected, sink.FirstErr())
	}
	if stats.Errors > 0 && stats.SeriesProcessed == 0 {
		return errors.New("every series failed extraction")
	}
	return nil
}
