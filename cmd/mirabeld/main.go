// Command mirabeld serves the flex-offer collection API — the network face
// of the MIRABEL data-management prototype the paper's extraction tools
// feed ([3]: near real-time flex-offer collection). Offers are submitted,
// accepted/rejected and assigned over HTTP; a background sweeper expires
// offers whose lifecycle deadlines lapse.
//
// Usage:
//
//	mirabeld -addr :7654 -sweep 30s
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"repro/internal/market"
)

func main() {
	addr := flag.String("addr", ":7654", "listen address")
	sweep := flag.Duration("sweep", 30*time.Second, "deadline sweep interval (0 disables)")
	flag.Parse()

	store := market.NewStore(nil)
	if *sweep > 0 {
		go func() {
			ticker := time.NewTicker(*sweep)
			defer ticker.Stop()
			for range ticker.C {
				if n := store.ExpireOverdue(); n > 0 {
					log.Printf("mirabeld: expired %d overdue offers", n)
				}
			}
		}()
	}
	fmt.Printf("mirabeld: listening on %s\n", *addr)
	if err := http.ListenAndServe(*addr, market.NewServer(store)); err != nil {
		log.Fatalf("mirabeld: %v", err)
	}
}
