// Command mirabeld serves the flex-offer collection API — the network face
// of the MIRABEL data-management prototype the paper's extraction tools
// feed ([3]: near real-time flex-offer collection). Offers are submitted,
// accepted/rejected and assigned over HTTP; a background sweeper expires
// offers whose lifecycle deadlines lapse. Both the sweeper and the HTTP
// server shut down cleanly on SIGINT/SIGTERM.
//
// The daemon is observable out of the box: /metrics exposes request,
// store and pipeline metrics in Prometheus text format (?format=json for
// JSON), /healthz reports liveness, /readyz flips to 200 once startup
// seeding has finished, and -pprof mounts net/http/pprof under
// /debug/pprof/. The full HTTP contract is documented in docs/API.md.
//
// The daemon protects itself under overload: admission control bounds
// per-class concurrency (reads vs writes) with a short bounded wait
// queue and sheds the excess with 429/503 plus a Retry-After hint
// (-admit-reads, -admit-writes, -admit-queue, -admit-wait);
// -request-timeout bounds every non-ops request end to end; and the
// in-process event-stream consumers (scheduler, KPI) run on bounded
// subscriptions (-event-high-water) that recover from overflow by
// replay resync instead of growing memory without limit. On SIGTERM the
// daemon drains: /readyz flips to 503, new non-ops work is refused,
// in-flight requests finish within -drain-timeout, and the final
// journal snapshot is taken before exit. docs/ARCHITECTURE.md details
// the design; docs/API.md documents the overload response contract.
//
// A directory of household CSVs can be bulk-extracted straight into the
// store at startup through the concurrent pipeline (internal/pipeline), so
// a whole portfolio's offers are collected before the daemon reports
// ready:
//
//	mirabeld -addr :7654 -sweep 30s -seed-dir data/ -seed-approach peak -seed-jobs 8
//
// Historical datasets carry lifecycle deadlines in the past; -clock pins
// the store's logical clock for such replays:
//
//	mirabeld -seed-dir data/ -clock 2012-06-04T00:00:00Z
//
// For resilience testing, -fault-profile injects a deterministic, seeded
// fault schedule (internal/faultinject) into both the HTTP routes and the
// startup seeding path — errors, latency, panics and partial batches at
// configured rates, replayable from the seed:
//
//	mirabeld -fault-profile 'seed=42,error=0.1,latency=0.05:20ms,panic=0.01'
//
// Injected faults flow through the observability middleware, so they are
// visible on /metrics (faultinject_decisions, request counters, recovered
// panics) like organic failures; the seeding path rides the pipeline's
// resilient sink, so faulted submissions are retried and anything that
// exhausts the budget is dead-lettered and logged rather than lost.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"time"

	"repro/internal/admission"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/kpi"
	"repro/internal/market"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/sched"
	"repro/internal/timeseries"
	"repro/internal/wal"
)

// config gathers the daemon's flags so run stays testable.
type config struct {
	addr          string
	sweep         time.Duration
	clockAt       string
	seedDir       string
	seedApproach  string
	seedFlexPct   float64
	seedJobs      int
	pprof         bool
	faultProfile  string
	dataDir       string
	fsync         string
	snapshotEvery int
	shards        int

	scheduleEvery      time.Duration
	scheduleHorizon    time.Duration
	scheduleResolution time.Duration
	resSeed            int64

	requestTimeout time.Duration
	drainTimeout   time.Duration
	admitWrites    int
	admitReads     int
	admitQueue     int
	admitWait      time.Duration
	eventHighWater int
}

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", ":7654", "listen address")
	flag.DurationVar(&cfg.sweep, "sweep", 30*time.Second, "deadline sweep interval (0 disables)")
	flag.StringVar(&cfg.clockAt, "clock", "", "fix the store's logical clock to this RFC3339 time (historical replays; default: live)")
	flag.StringVar(&cfg.seedDir, "seed-dir", "", "bulk-extract every CSV in this directory into the store at startup")
	flag.StringVar(&cfg.seedApproach, "seed-approach", "peak", "extraction approach for -seed-dir (basic | peak | random)")
	flag.Float64Var(&cfg.seedFlexPct, "seed-flexpct", 0.05, "flexible share for -seed-dir extraction")
	flag.IntVar(&cfg.seedJobs, "seed-jobs", 0, "worker count for -seed-dir extraction (0 = GOMAXPROCS)")
	flag.BoolVar(&cfg.pprof, "pprof", false, "mount net/http/pprof under /debug/pprof/")
	flag.StringVar(&cfg.faultProfile, "fault-profile", "", `inject seeded faults into HTTP routes and seeding (e.g. "seed=42,error=0.1,latency=0.05:20ms"; empty disables)`)
	flag.StringVar(&cfg.dataDir, "data-dir", "", "journal every offer transition to this directory and recover state from it on boot (empty = in-memory only)")
	flag.StringVar(&cfg.fsync, "fsync", "always", "journal fsync policy: always (durable per write), interval (bounded loss window), never (OS decides)")
	flag.IntVar(&cfg.snapshotEvery, "snapshot-every", 4096, "journaled events between automatic snapshots (0 disables; a final snapshot is always taken on shutdown)")
	flag.IntVar(&cfg.shards, "shards", 0, "store shard count; with -data-dir, 0 adopts the directory's existing count (1 on a fresh directory) and a non-zero value must match it")
	flag.DurationVar(&cfg.scheduleEvery, "schedule-every", 0, "run a scheduling round this often (0 disables the periodic loop; POST /schedule/run always works)")
	flag.DurationVar(&cfg.scheduleHorizon, "schedule-horizon", 24*time.Hour, "scheduling horizon length")
	flag.DurationVar(&cfg.scheduleResolution, "schedule-resolution", 15*time.Minute, "scheduling grid resolution (must divide the horizon)")
	flag.Int64Var(&cfg.resSeed, "res-seed", 1, "seed for the wind-farm supply simulation behind the scheduler's forecast")
	flag.DurationVar(&cfg.requestTimeout, "request-timeout", 30*time.Second, "server-wide request deadline; expired requests answer 503 with Retry-After (0 disables)")
	flag.DurationVar(&cfg.drainTimeout, "drain-timeout", 10*time.Second, "graceful-shutdown drain budget for in-flight requests")
	flag.IntVar(&cfg.admitWrites, "admit-writes", 256, "max concurrent write requests (POST/PUT/DELETE); 0 disables write admission control")
	flag.IntVar(&cfg.admitReads, "admit-reads", 512, "max concurrent read requests (GET/HEAD); 0 disables read admission control")
	flag.IntVar(&cfg.admitQueue, "admit-queue", 512, "per-class wait-queue depth beyond the concurrency limit; arrivals past it answer 429")
	flag.DurationVar(&cfg.admitWait, "admit-wait", time.Second, "max time a queued request waits for an admission slot before answering 503")
	flag.IntVar(&cfg.eventHighWater, "event-high-water", 65536, "bound on each event-stream subscription queue; overflowing consumers resync via replay (0 = unbounded)")
	logLevel := flag.String("log-level", "info", "minimum log level (debug | info | warn | error)")
	flag.Parse()

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mirabeld: %v\n", err)
		os.Exit(2)
	}
	logger := obs.NewLogger(os.Stderr, level)
	if err := run(cfg, logger); err != nil {
		logger.Error("exiting", "err", err)
		os.Exit(1)
	}
}

// run is the daemon body. Every failure returns an error instead of
// calling log.Fatalf, so deferred cleanup (signal handler release,
// graceful server shutdown) always executes.
func run(cfg config, logger *obs.Logger) error {
	var clock func() time.Time
	if cfg.clockAt != "" {
		at, err := time.Parse(time.RFC3339, cfg.clockAt)
		if err != nil {
			return fmt.Errorf("-clock: %w", err)
		}
		clock = func() time.Time { return at }
	}

	// With -data-dir, all state is recovered synchronously here — before
	// the listener starts and long before /readyz can flip healthy — and
	// every later transition is journaled before it is acknowledged.
	var store *market.Store
	var journal *market.Journal
	var fsyncPolicy wal.SyncPolicy
	if cfg.dataDir != "" {
		policy, err := wal.ParseSyncPolicy(cfg.fsync)
		if err != nil {
			return fmt.Errorf("-fsync: %w", err)
		}
		fsyncPolicy = policy
		store, journal, err = market.OpenJournaled(market.JournalOptions{
			Dir:           cfg.dataDir,
			Shards:        cfg.shards,
			Policy:        policy,
			SnapshotEvery: cfg.snapshotEvery,
			Clock:         clock,
		})
		if err != nil {
			return fmt.Errorf("-data-dir %s: %w", cfg.dataDir, err)
		}
		// The deferred close takes the final snapshot on every exit path,
		// including graceful SIGINT/SIGTERM shutdown.
		defer func() {
			if err := journal.Close(); err != nil {
				logger.Warn("journal close", "err", err)
			}
		}()
		rec := journal.Recovery()
		logger.Info("state recovered",
			"dir", cfg.dataDir, "fsync", policy, "shards", journal.ShardCount(),
			"offers", rec.Offers, "snapshot_used", rec.SnapshotUsed,
			"events_replayed", rec.EventsReplayed,
			"duration", rec.Duration.Round(time.Millisecond))
		if rec.WAL.TornTail {
			logger.Warn("journal had a torn final record; truncated",
				"bytes", rec.WAL.TornBytes)
		}
	} else {
		store = market.NewShardedStore(cfg.shards, clock)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// One registry backs everything: HTTP middleware, store gauges,
	// pipeline telemetry. /metrics renders it all.
	reg := obs.NewRegistry()
	httpMetrics := obs.NewHTTPMetrics(reg, "mirabeld")
	storeMetrics := market.RegisterStoreMetrics(reg, store)
	if journal != nil {
		market.RegisterJournalMetrics(reg, journal)
	}
	telemetry := pipeline.NewTelemetry(reg)

	faults, err := faultSchedule(cfg.faultProfile, reg)
	if err != nil {
		return err
	}
	apiOpts := []market.ServerOption{market.WithObservability(httpMetrics, logger)}
	if faults != nil {
		logger.Warn("fault injection active", "profile", cfg.faultProfile)
		apiOpts = append(apiOpts, market.WithMiddleware(func(next http.Handler) http.Handler {
			return faultinject.Middleware(next, faults)
		}))
	}

	// The scheduler service rides the recovered store: it bootstraps its
	// aggregator from the store's event stream and, with -data-dir, keeps
	// its decision ledger next to the offer journal so both recover from
	// the same directory.
	schedCfg := sched.Config{
		Store:          store,
		Horizon:        cfg.scheduleHorizon,
		Resolution:     cfg.scheduleResolution,
		SupplySeed:     cfg.resSeed,
		Clock:          clock,
		Logger:         logger,
		EventHighWater: cfg.eventHighWater,
	}
	if cfg.dataDir != "" {
		schedCfg.LedgerDir = filepath.Join(cfg.dataDir, "sched")
		schedCfg.Policy = fsyncPolicy
	}
	schedSvc, err := sched.New(schedCfg)
	if err != nil {
		return fmt.Errorf("scheduler: %w", err)
	}
	defer func() {
		if err := schedSvc.Close(); err != nil {
			logger.Warn("scheduler close", "err", err)
		}
	}()
	sched.RegisterServiceMetrics(reg, schedSvc)
	schedAPI := obs.Middleware(schedSvc.Handler(), httpMetrics, market.RouteLabel, logger)

	// The KPI service rides the same event stream: it bootstraps from the
	// recovered store via SubscribeReplay and folds every later lifecycle
	// transition, so GET /kpi always reflects the store exactly. Its peak
	// buckets share the scheduler's grid resolution.
	kpiSvc, err := kpi.NewService(kpi.ServiceConfig{
		Store:          store,
		Config:         kpi.Config{Resolution: cfg.scheduleResolution},
		EventHighWater: cfg.eventHighWater,
		Logger:         logger,
	})
	if err != nil {
		return fmt.Errorf("kpi: %w", err)
	}
	defer kpiSvc.Close()
	kpi.RegisterServiceMetrics(reg, kpiSvc)
	kpiAPI := obs.Middleware(kpiSvc.Handler(), httpMetrics, market.RouteLabel, logger)

	var hlt health
	api := market.NewServer(store, apiOpts...)

	// The overload stack wraps the whole surface: admission control
	// classifies each request (ops / read / write), bounds per-class
	// concurrency plus a short wait queue, and sheds the excess with
	// 429/503 + Retry-After; the timeout layer above it bounds every
	// non-ops request — queue wait included — by -request-timeout. The
	// operational probes bypass both, so /healthz, /readyz and /metrics
	// answer even when the daemon is saturated.
	ctrl := admission.NewController(admission.Config{
		Reads:  admission.Limits{MaxConcurrent: cfg.admitReads, MaxQueue: cfg.admitQueue, MaxWait: cfg.admitWait},
		Writes: admission.Limits{MaxConcurrent: cfg.admitWrites, MaxQueue: cfg.admitQueue, MaxWait: cfg.admitWait},
	})
	admission.RegisterMetrics(reg, ctrl)
	obs.RegisterRuntimeMetrics(reg)
	handler := admission.WithTimeout(
		ctrl.Middleware(newHandler(api, schedAPI, kpiAPI, reg, &hlt, cfg.pprof)),
		cfg.requestTimeout,
		func(r *http.Request) bool { return ctrl.ClassOf(r) == admission.ClassOps },
	)

	srv := &http.Server{Addr: cfg.addr, Handler: handler}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	logger.Info("listening", "addr", cfg.addr, "pprof", cfg.pprof, "sweep", cfg.sweep)

	if cfg.sweep > 0 {
		go sweeper(ctx, store, cfg.sweep, storeMetrics, logger)
	}
	if cfg.scheduleEvery > 0 {
		logger.Info("periodic scheduling enabled",
			"every", cfg.scheduleEvery, "horizon", cfg.scheduleHorizon, "resolution", cfg.scheduleResolution)
		go schedSvc.RunPeriodically(ctx, cfg.scheduleEvery)
	}

	// Seed while the server is already answering /healthz; /readyz stays
	// 503 until the store is populated, then flips to 200.
	seedc := make(chan error, 1)
	go func() {
		if cfg.seedDir != "" {
			if err := seedStore(ctx, store, telemetry, logger, clock, faults, cfg.seedDir, cfg.seedApproach, cfg.seedFlexPct, cfg.seedJobs); err != nil {
				seedc <- fmt.Errorf("seed: %w", err)
				return
			}
		}
		hlt.ready.Store(true)
		logger.Info("ready", "seeded", cfg.seedDir != "")
		seedc <- nil
	}()

	for {
		select {
		case err := <-errc:
			if errors.Is(err, http.ErrServerClosed) {
				return nil
			}
			return fmt.Errorf("serve: %w", err)
		case err := <-seedc:
			if err != nil {
				shutdownErr := shutdown(srv, logger, cfg.drainTimeout)
				if shutdownErr != nil {
					logger.Warn("shutdown after failed seed", "err", shutdownErr)
				}
				return err
			}
			seedc = nil // seeded; a nil channel never fires again
		case <-ctx.Done():
			// Drain-safe shutdown: flip /readyz to 503 and refuse new
			// non-ops work first, then let in-flight requests finish
			// within the drain budget. The deferred journal close takes
			// the final snapshot after the listener stops, so every
			// acknowledged offer is on disk before exit.
			hlt.draining.Store(true)
			ctrl.BeginDrain()
			logger.Info("shutting down; draining",
				"in_flight", ctrl.InFlight(), "drain_timeout", cfg.drainTimeout)
			return shutdown(srv, logger, cfg.drainTimeout)
		}
	}
}

// faultSchedule parses -fault-profile into a live schedule registered on
// reg, or (nil, nil) when the flag is empty.
func faultSchedule(profile string, reg *obs.Registry) (*faultinject.Schedule, error) {
	if profile == "" {
		return nil, nil
	}
	prof, err := faultinject.ParseProfile(profile)
	if err != nil {
		return nil, fmt.Errorf("-fault-profile: %w", err)
	}
	schedule := faultinject.NewSchedule(prof)
	faultinject.RegisterMetrics(reg, schedule)
	return schedule, nil
}

// shutdown drains the server gracefully, bounded by the drain budget.
func shutdown(srv *http.Server, logger *obs.Logger, drain time.Duration) error {
	if drain <= 0 {
		drain = 5 * time.Second
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	logger.Info("stopped")
	return nil
}

// sweeper periodically expires overdue offers until the context ends.
func sweeper(ctx context.Context, store *market.Store, interval time.Duration, metrics *market.StoreMetrics, logger *obs.Logger) {
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			n, err := store.ExpireOverdue()
			if err != nil {
				logger.Warn("sweep failed", "err", err)
				continue
			}
			if n > 0 {
				metrics.SweeperExpired.Add(uint64(n))
				logger.Debug("sweep expired overdue offers", "expired", n)
			}
		}
	}
}

// seedStore bulk-extracts every *.csv under dir through the concurrent
// pipeline and submits the resulting offers into the store over the
// resilient sink: transient submission failures retry with backoff, and
// offers that exhaust the budget are dead-lettered and logged, never
// silently dropped. faults, when non-nil, injects the -fault-profile
// schedule between the retry layer and the store. telemetry and logger may
// be nil; clock is the store's logical clock (nil for live), injected into
// the pipeline so -clock replays report deterministic batch timings.
func seedStore(ctx context.Context, store *market.Store, telemetry *pipeline.Telemetry, logger *obs.Logger, clock func() time.Time, faults *faultinject.Schedule, dir, approach string, flexPct float64, jobs int) error {
	all, err := filepath.Glob(filepath.Join(dir, "*.csv"))
	if err != nil {
		return err
	}
	// Skip flexextract batch outputs that may sit next to the inputs.
	files := all[:0]
	for _, path := range all {
		if !strings.HasSuffix(path, ".modified.csv") {
			files = append(files, path)
		}
	}
	sort.Strings(files)
	if len(files) == 0 {
		return fmt.Errorf("no *.csv files under %s", dir)
	}

	newExtractor := func(params core.Params) (core.Extractor, error) {
		switch approach {
		case "basic":
			return &core.BasicExtractor{Params: params}, nil
		case "peak":
			return &core.PeakExtractor{Params: params}, nil
		case "random":
			return &core.RandomExtractor{Params: params}, nil
		default:
			return nil, fmt.Errorf("unknown seed approach %q", approach)
		}
	}
	if _, err := newExtractor(core.DefaultParams()); err != nil {
		return err
	}

	batch := make([]pipeline.Job, 0, len(files))
	for _, path := range files {
		// The per-file check keeps a large seed responsive to SIGINT: the
		// extraction pipeline below is already cancellable, but without
		// this a shutdown would still wait for every CSV to be read first.
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("seeding cancelled: %w", err)
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		series, err := timeseries.ReadCSV(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("read %s: %w", path, err)
		}
		batch = append(batch, pipeline.Job{
			ID:     strings.TrimSuffix(filepath.Base(path), ".csv"),
			Series: series,
		})
	}
	seedOf := make(map[string]int64, len(batch))
	for i, j := range batch {
		seedOf[j.ID] = int64(i + 1)
	}

	storeSink := &pipeline.StoreSink{Store: store}
	var inner pipeline.Sink = storeSink
	if faults != nil {
		inner = faultinject.WrapSink(storeSink, faults)
	}
	sink := pipeline.NewResilientSink(inner, pipeline.DefaultRetryPolicy(), telemetry)
	cfg := pipeline.Config{
		Workers:   jobs,
		Telemetry: telemetry,
		Clock:     clock,
		NewExtractor: func(j pipeline.Job) core.Extractor {
			params := core.DefaultParams()
			params.FlexPercentage = flexPct
			params.Seed = seedOf[j.ID]
			params.ConsumerID = j.ID
			ex, _ := newExtractor(params)
			return ex
		},
	}
	stats, err := pipeline.RunJobs(ctx, cfg, batch, sink)
	if err != nil {
		return err
	}
	for _, je := range stats.JobErrors {
		logger.Warn("seed job failed", "job", je.JobID, "err", je.Err)
	}
	for _, dl := range sink.DeadLetters() {
		logger.Warn("seed offers dead-lettered", "job", dl.JobID, "offers", len(dl.Offers), "attempts", dl.Attempts, "err", dl.Err)
	}
	submitted, rejected := storeSink.Counts()
	logger.Info("seed done",
		"offers", submitted, "series", stats.SeriesProcessed, "batch", len(batch),
		"rejected", rejected, "extract_errors", stats.Errors,
		"retries", stats.SinkRetries, "dead_lettered", stats.DeadLettered,
		"wall", stats.Wall.Round(time.Millisecond), "speedup", fmt.Sprintf("%.2fx", stats.Speedup()),
		"workers", stats.Workers)
	if rejected > 0 {
		return fmt.Errorf("%d offers rejected by the store (first: %v); historical data may need -clock", rejected, storeSink.FirstErr())
	}
	if stats.Errors > 0 && stats.SeriesProcessed == 0 {
		return errors.New("every series failed extraction")
	}
	return nil
}
