package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"testing"

	"repro/internal/market"
)

// docHeadingRe matches the `### METHOD /path` headings docs/API.md uses
// to introduce each route.
var docHeadingRe = regexp.MustCompile(`(?m)^### (GET|POST|PUT|DELETE|PATCH) (/\S*)$`)

// TestAPIDocCoversAllRoutes diffs the daemon's registered routes (the
// market API inventory plus the operational endpoints mounted by
// newHandler, pprof included) against docs/API.md, in both directions:
// every route must be documented, and every documented route must exist.
func TestAPIDocCoversAllRoutes(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("..", "..", "docs", "API.md"))
	if err != nil {
		t.Fatalf("read docs/API.md: %v", err)
	}
	documented := make(map[string]bool)
	for _, m := range docHeadingRe.FindAllStringSubmatch(string(raw), -1) {
		documented[m[1]+" "+m[2]] = true
	}
	if len(documented) == 0 {
		t.Fatal("docs/API.md has no `### METHOD /path` headings")
	}

	registered := make(map[string]bool)
	routes := append(market.Routes(), schedRoutes()...)
	routes = append(routes, kpiRoutes()...)
	for _, r := range append(routes, opsRoutes(true)...) {
		registered[fmt.Sprintf("%s %s", r.Method, r.Pattern)] = true
	}

	for route := range registered {
		if !documented[route] {
			t.Errorf("route %q is registered but missing from docs/API.md", route)
		}
	}
	for route := range documented {
		if !registered[route] {
			t.Errorf("docs/API.md documents %q, which is not a registered route", route)
		}
	}
}
