package main

import (
	"context"
	"errors"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/market"
	"repro/internal/obs"
	"repro/internal/timeseries"
)

var seedStart = time.Date(2012, 6, 4, 0, 0, 0, 0, time.UTC)

func writeHouseCSV(t *testing.T, path string, days int) {
	t.Helper()
	res := 15 * time.Minute
	perDay := int((24 * time.Hour) / res)
	vals := make([]float64, days*perDay)
	for i := range vals {
		frac := float64(i%perDay) / float64(perDay) * 24
		vals[i] = 0.2 + 0.6*math.Exp(-(frac-19)*(frac-19)/6)
	}
	s := timeseries.MustNew(seedStart, res, vals)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := s.WriteCSV(f); err != nil {
		t.Fatal(err)
	}
}

func TestSeedStoreBulkSubmits(t *testing.T) {
	dir := t.TempDir()
	const n = 5
	for _, name := range []string{"a", "b", "c", "d", "e"} {
		writeHouseCSV(t, filepath.Join(dir, name+".csv"), 3)
	}
	// Replay clock before the historical deadlines, as -clock would set.
	clock := seedStart.Add(-48 * time.Hour)
	store := market.NewStore(func() time.Time { return clock })
	if err := seedStore(context.Background(), store, nil, nil, nil, nil, dir, "peak", 0.05, 4); err != nil {
		t.Fatal(err)
	}
	counts := store.Stats()
	if counts.Offered == 0 {
		t.Fatal("seeding left the store empty")
	}
	// Offers from every series arrived, with qualified IDs.
	bySeries := make(map[string]int)
	for _, rec := range store.List() {
		id := rec.Offer.ID
		slash := strings.IndexByte(id, '/')
		if slash < 0 {
			t.Fatalf("offer ID %q not qualified with its series name", id)
		}
		bySeries[id[:slash]]++
		if rec.Offer.ConsumerID != id[:slash] {
			t.Fatalf("offer %q has consumer %q", id, rec.Offer.ConsumerID)
		}
	}
	if len(bySeries) != n {
		t.Fatalf("offers from %d series, want %d", len(bySeries), n)
	}
}

func TestSeedStoreLiveClockRejectsHistoricalOffers(t *testing.T) {
	dir := t.TempDir()
	writeHouseCSV(t, filepath.Join(dir, "old.csv"), 2)
	store := market.NewStore(nil) // live clock: 2012 deadlines lapsed long ago
	err := seedStore(context.Background(), store, nil, nil, nil, nil, dir, "peak", 0.05, 2)
	if err == nil {
		t.Fatal("historical offers accepted under a live clock")
	}
	if !strings.Contains(err.Error(), "-clock") {
		t.Fatalf("err = %v, want hint about -clock", err)
	}
}

func TestSeedStoreErrors(t *testing.T) {
	if err := seedStore(context.Background(), market.NewStore(nil), nil, nil, nil, nil, t.TempDir(), "peak", 0.05, 1); err == nil {
		t.Fatal("empty seed dir accepted")
	}
	dir := t.TempDir()
	writeHouseCSV(t, filepath.Join(dir, "h.csv"), 2)
	if err := seedStore(context.Background(), market.NewStore(nil), nil, nil, nil, nil, dir, "frequency", 0.05, 1); err == nil {
		t.Fatal("unsupported seed approach accepted")
	}
}

func TestSeedStoreSurvivesFaultInjection(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"a", "b", "c"} {
		writeHouseCSV(t, filepath.Join(dir, name+".csv"), 2)
	}
	prof, err := faultinject.ParseProfile("seed=11,error=0.3,panic=0.05")
	if err != nil {
		t.Fatal(err)
	}
	faults := faultinject.NewSchedule(prof)
	clock := seedStart.Add(-48 * time.Hour)
	store := market.NewStore(func() time.Time { return clock })
	if err := seedStore(context.Background(), store, nil, nil, nil, faults, dir, "peak", 0.05, 2); err != nil {
		t.Fatal(err)
	}
	if faults.Counts()["total"] == 0 {
		t.Fatal("fault schedule never consulted")
	}
	if store.Stats().Offered == 0 {
		t.Fatal("fault injection emptied the store; the resilient sink did not retry")
	}
}

func TestSeedStoreCancelled(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"a", "b", "c"} {
		writeHouseCSV(t, filepath.Join(dir, name+".csv"), 2)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // shutdown arrives before seeding starts reading files
	store := market.NewStore(nil)
	err := seedStore(ctx, store, nil, nil, nil, nil, dir, "peak", 0.05, 2)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled seed = %v, want context.Canceled", err)
	}
	if !strings.Contains(err.Error(), "seeding cancelled") {
		t.Fatalf("err = %v, want a seeding-cancelled message", err)
	}
	if got := len(store.List()); got != 0 {
		t.Fatalf("cancelled seed still submitted %d offers", got)
	}
}

// quietLogger builds a logger that swallows output for run() error paths.
func quietLogger(t *testing.T) *obs.Logger {
	t.Helper()
	level, err := obs.ParseLevel("error")
	if err != nil {
		t.Fatal(err)
	}
	return obs.NewLogger(io.Discard, level)
}

func TestRunRejectsBadJournalConfig(t *testing.T) {
	logger := quietLogger(t)
	err := run(config{dataDir: t.TempDir(), fsync: "sometimes"}, logger)
	if err == nil || !strings.Contains(err.Error(), "-fsync") {
		t.Fatalf("bad fsync policy: %v, want -fsync context", err)
	}
	// A -data-dir that collides with a regular file cannot be created.
	clash := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(clash, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	err = run(config{dataDir: filepath.Join(clash, "wal"), fsync: "always"}, logger)
	if err == nil || !strings.Contains(err.Error(), "-data-dir") {
		t.Fatalf("unusable data dir: %v, want -data-dir context", err)
	}
}

func TestFaultScheduleFlag(t *testing.T) {
	reg := obs.NewRegistry()
	if s, err := faultSchedule("", reg); s != nil || err != nil {
		t.Fatalf("empty profile: schedule %v, err %v", s, err)
	}
	if _, err := faultSchedule("error=2.0", reg); err == nil || !strings.Contains(err.Error(), "-fault-profile") {
		t.Fatalf("invalid profile error = %v, want -fault-profile context", err)
	}
	s, err := faultSchedule("seed=5,error=0.5", reg)
	if err != nil || s == nil {
		t.Fatalf("valid profile: %v, %v", s, err)
	}
	s.Next()
	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "faultinject_decisions") {
		t.Fatal("fault decisions not registered on /metrics registry")
	}
}
