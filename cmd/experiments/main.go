// Command experiments regenerates the paper's tables and figures (and the
// extension experiments) from DESIGN.md's index.
//
// Usage:
//
//	experiments            # run everything
//	experiments -list      # list experiment IDs
//	experiments -run E3    # run one experiment
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list experiments and exit")
	run := flag.String("run", "", "run a single experiment by ID (e.g. E3)")
	flag.Parse()

	switch {
	case *list:
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %-45s %s\n", e.ID, e.Title, e.Paper)
		}
	case *run != "":
		e, ok := experiments.ByID(*run)
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (try -list)\n", *run)
			os.Exit(2)
		}
		fmt.Printf("=== %s — %s (%s) ===\n", e.ID, e.Title, e.Paper)
		if err := e.Run(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
	default:
		if err := experiments.RunAll(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
	}
}
