// Command flexload is a closed-loop load generator for the mirabeld
// flex-offer API. Each of -c workers drives the full offer lifecycle
// against a running daemon — submit, accept, assign, with periodic list
// and stats reads — as fast as the server answers, for -duration.
// Latencies are recorded per operation in internal/obs histograms and a
// machine-readable JSON report (p50/p95/p99 per op, overall throughput)
// is written to -report.
//
// Usage:
//
//	flexload -base http://127.0.0.1:7654 -c 8 -duration 30s -seed 42 -report BENCH_4.json
//
// Offer construction is seeded: worker w derives its generator from
// -seed+w, so two runs with the same seed and concurrency submit the
// same offer stream. Against a fault-injecting server (mirabeld
// -fault-profile), the error counts in the report measure how much of
// the injected fault rate the client side observed. -schedule-every
// additionally fires POST /schedule/run at a fixed period, so a load
// run can measure scheduling rounds interleaved with the lifecycle
// traffic (the "schedule" op in the report).
//
// Against a daemon running admission control, -overload marks the run
// as an intentional overload probe: shed responses (429/503) move out
// of the error counters into a dedicated report block that records the
// shed volume per status and operation and whether every shed carried
// the Retry-After hint; workers honour the hint before offering more
// load, modelling a well-behaved client under pushback.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/flexoffer"
	"repro/internal/kpi"
	"repro/internal/market"
	"repro/internal/obs"
)

func main() {
	cfg := config{}
	flag.StringVar(&cfg.BaseURL, "base", "http://127.0.0.1:7654", "mirabeld base URL")
	flag.IntVar(&cfg.Concurrency, "c", 4, "concurrent workers")
	flag.DurationVar(&cfg.Duration, "duration", 10*time.Second, "how long to drive load")
	flag.Int64Var(&cfg.Seed, "seed", 1, "offer-stream seed (worker w uses seed+w)")
	flag.DurationVar(&cfg.ScheduleEvery, "schedule-every", 0, "POST /schedule/run this often during the run (0 = never)")
	flag.BoolVar(&cfg.Overload, "overload", false, "overload mode: record 429/503 shed responses and Retry-After compliance in a distinct report block instead of counting them as errors")
	report := flag.String("report", "-", `report output path ("-" = stdout)`)
	flag.Parse()

	rep, err := run(context.Background(), cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "flexload: %v\n", err)
		os.Exit(1)
	}
	out := os.Stdout
	var f *os.File
	if *report != "-" {
		f, err = os.Create(*report)
		if err != nil {
			fmt.Fprintf(os.Stderr, "flexload: %v\n", err)
			os.Exit(1)
		}
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	err = enc.Encode(rep)
	if f != nil {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "flexload: %v\n", err)
		os.Exit(1)
	}
}

// config parameterises one load run.
type config struct {
	// BaseURL is the target daemon's root URL.
	BaseURL string
	// Concurrency is the number of closed-loop workers.
	Concurrency int
	// Duration bounds the run.
	Duration time.Duration
	// Seed derives each worker's offer stream (worker w uses Seed+w).
	Seed int64
	// ScheduleEvery, when positive, fires POST /schedule/run at this
	// period for the whole run — measuring scheduling rounds as one more
	// operation of the mixed workload. Zero disables it (targets without
	// the scheduling API, and the committed benchmark baseline).
	ScheduleEvery time.Duration
	// Overload marks a run that intentionally drives the target past its
	// admission capacity: shed responses (429/503) are expected behaviour
	// there, so they are recorded in the report's Overload block — shed
	// counts per status, per op, and Retry-After compliance — instead of
	// inflating the error counters.
	Overload bool
	// HTTPClient overrides the transport (tests inject the httptest
	// server's client); nil means a 10s-timeout default client.
	HTTPClient *http.Client
}

// OverloadReport is the -overload mode report block: how much of the
// offered load the server shed, split by status, and whether every shed
// response carried the Retry-After hint clients pace themselves by.
type OverloadReport struct {
	// Shed429 counts queue-overflow sheds (the client outran its share).
	Shed429 uint64 `json:"shed_429"`
	// Shed503 counts wait-timeout, drain and request-timeout sheds (the
	// server was the bottleneck or going away).
	Shed503 uint64 `json:"shed_503"`
	// ShedWithRetryAfter counts shed responses carrying a parseable
	// Retry-After header.
	ShedWithRetryAfter uint64 `json:"shed_with_retry_after"`
	// RetryAfterCompliant is true when every shed response carried the
	// hint — the contract docs/API.md promises.
	RetryAfterCompliant bool `json:"retry_after_compliant"`
	// MaxRetryAfterSeconds is the largest hint observed.
	MaxRetryAfterSeconds float64 `json:"max_retry_after_seconds"`
	// ShedByOp splits the sheds by operation.
	ShedByOp map[string]uint64 `json:"shed_by_op"`
}

// shedTracker accumulates shed observations across workers.
type shedTracker struct {
	shed429   atomic.Uint64
	shed503   atomic.Uint64
	withHint  atomic.Uint64
	maxHintNs atomic.Int64
	byOp      *obs.CounterVec
}

// observe records one shed response.
func (s *shedTracker) observe(op string, shed *market.ShedError) {
	switch shed.StatusCode {
	case http.StatusTooManyRequests:
		s.shed429.Add(1)
	default:
		s.shed503.Add(1)
	}
	if shed.RetryAfter > 0 {
		s.withHint.Add(1)
		for {
			cur := s.maxHintNs.Load()
			if int64(shed.RetryAfter) <= cur || s.maxHintNs.CompareAndSwap(cur, int64(shed.RetryAfter)) {
				break
			}
		}
	}
	s.byOp.With(opLabel(op)).Inc()
}

// report renders the tracker as the report block.
func (s *shedTracker) report() *OverloadReport {
	rep := &OverloadReport{
		Shed429:              s.shed429.Load(),
		Shed503:              s.shed503.Load(),
		ShedWithRetryAfter:   s.withHint.Load(),
		MaxRetryAfterSeconds: time.Duration(s.maxHintNs.Load()).Seconds(),
		ShedByOp:             make(map[string]uint64),
	}
	total := rep.Shed429 + rep.Shed503
	rep.RetryAfterCompliant = total > 0 && rep.ShedWithRetryAfter == total
	for _, op := range opNames {
		if n := s.byOp.With(opLabel(op)).Value(); n > 0 {
			rep.ShedByOp[op] = n
		}
	}
	return rep
}

// OpStats summarises one operation's latency distribution in the report.
type OpStats struct {
	Count  uint64  `json:"count"`
	Errors uint64  `json:"errors"`
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
}

// Report is flexload's machine-readable result — the schema committed as
// BENCH_4.json and tracked across PRs.
type Report struct {
	BaseURL             string             `json:"base_url"`
	Seed                int64              `json:"seed"`
	Concurrency         int                `json:"concurrency"`
	DurationSeconds     float64            `json:"duration_seconds"`
	Ops                 map[string]OpStats `json:"ops"`
	TotalOps            uint64             `json:"total_ops"`
	TotalErrors         uint64             `json:"total_errors"`
	ThroughputOpsPerSec float64            `json:"throughput_ops_per_sec"`
	OffersSubmitted     uint64             `json:"offers_submitted"`
	OffersAccepted      uint64             `json:"offers_accepted"`
	OffersAssigned      uint64             `json:"offers_assigned"`
	// Shards is the server's per-shard contention view at the end of the
	// run, scraped from /metrics?format=json. Empty when the target does
	// not expose the market_shard_* families (plain market.Server without
	// a metrics endpoint, or a pre-sharding daemon).
	Shards []ShardReport `json:"shards,omitempty"`
	// Overload is the shed accounting of an -overload run; nil otherwise.
	Overload *OverloadReport `json:"overload,omitempty"`
	// KPI is the server's flexibility KPI report at the end of the run,
	// scraped from GET /kpi, with the generator's own offer ledger
	// reconciled against the server-side fold. Nil when the target has no
	// /kpi route (bare market.Server fixtures, pre-KPI daemons).
	KPI *KPIBlock `json:"kpi,omitempty"`
}

// KPIBlock embeds the target's KPI report plus the reconciliation of the
// load generator's client-side counters against the server-side fold.
// For the workers' own offers (owners load-<seed>-w<i>) submissions and
// acceptances must agree exactly: the client only counts an op after a
// 2xx answer, the daemon's fault injection rejects requests before they
// reach the store, and no other actor performs those transitions — so
// every client-confirmed submit/accept is exactly one folded store
// event. Assignments are a lower bound: a concurrent scheduling round
// (-schedule-every, or the daemon's own scheduler) may assign a worker's
// accepted offer first, in which case the worker's own assign fails a
// state check and is never client-counted. A non-empty
// ReconciliationErrors therefore means the KPI fold lost or
// double-counted an event.
type KPIBlock struct {
	Report               kpi.Report `json:"report"`
	ReconciliationErrors []string   `json:"reconciliation_errors"`
}

// ShardReport is one shard's contention counters in the report.
type ShardReport struct {
	Shard           int     `json:"shard"`
	Offers          float64 `json:"offers"`
	LockWaitSeconds float64 `json:"lock_wait_seconds"`
	LockHoldSeconds float64 `json:"lock_hold_seconds"`
	QueueDepth      float64 `json:"queue_depth"`
}

// opNames are the operations the generator performs: the worker
// lifecycle in order, the periodic reads, and the (opt-in,
// -schedule-every) scheduling round.
var opNames = []string{"submit", "accept", "assign", "list", "stats", "schedule"}

// listPageLimit is the page size the periodic list read requests.
const listPageLimit = 100

// opLabel bounds the metric label set to the known operations, keeping
// the per-op vec families at fixed cardinality.
func opLabel(op string) string {
	switch op {
	case "submit":
		return "submit"
	case "accept":
		return "accept"
	case "assign":
		return "assign"
	case "list":
		return "list"
	case "stats":
		return "stats"
	case "schedule":
		return "schedule"
	default:
		return "other"
	}
}

// run drives the closed loop and assembles the report. It is the testable
// core of the command: the soak test calls it against an httptest server.
func run(ctx context.Context, cfg config) (Report, error) {
	if cfg.Concurrency <= 0 {
		return Report{}, fmt.Errorf("concurrency must be positive, got %d", cfg.Concurrency)
	}
	if cfg.Duration <= 0 {
		return Report{}, fmt.Errorf("duration must be positive, got %v", cfg.Duration)
	}
	httpClient := cfg.HTTPClient
	if httpClient == nil {
		// The default transport keeps only 2 idle connections per host, so
		// any higher concurrency redials TCP on most requests and the
		// generator measures connection churn instead of the store. Keep
		// one persistent connection per worker.
		transport := http.DefaultTransport.(*http.Transport).Clone()
		transport.MaxIdleConnsPerHost = cfg.Concurrency
		httpClient = &http.Client{Timeout: 10 * time.Second, Transport: transport}
	}

	reg := obs.NewRegistry()
	latency := reg.NewHistogramVec("flexload_op_seconds", "per-operation latency", nil, "op")
	errs := reg.NewCounterVec("flexload_op_errors_total", "per-operation errors", "op")
	var submitted, accepted, assigned obs.Counter
	var shed *shedTracker
	if cfg.Overload {
		shed = &shedTracker{byOp: reg.NewCounterVec("flexload_op_shed_total", "per-operation shed responses", "op")}
	}

	ctx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()
	start := time.Now()

	var wg sync.WaitGroup
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			worker{
				client:    &market.Client{BaseURL: cfg.BaseURL, HTTPClient: httpClient},
				rng:       rand.New(rand.NewSource(cfg.Seed + int64(w))),
				id:        fmt.Sprintf("load-%d-w%d", cfg.Seed, w),
				latency:   latency,
				errs:      errs,
				submitted: &submitted,
				accepted:  &accepted,
				assigned:  &assigned,
				shed:      shed,
			}.loop(ctx)
		}(w)
	}
	if cfg.ScheduleEvery > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ticker := time.NewTicker(cfg.ScheduleEvery)
			defer ticker.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-ticker.C:
					t0 := time.Now()
					err := postScheduleRun(ctx, httpClient, cfg.BaseURL)
					latency.With(opLabel("schedule")).Observe(time.Since(t0).Seconds())
					if err != nil && ctx.Err() == nil {
						errs.With(opLabel("schedule")).Inc()
					}
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := Report{
		BaseURL:         cfg.BaseURL,
		Seed:            cfg.Seed,
		Concurrency:     cfg.Concurrency,
		DurationSeconds: elapsed.Seconds(),
		Ops:             make(map[string]OpStats, len(opNames)),
		OffersSubmitted: submitted.Value(),
		OffersAccepted:  accepted.Value(),
		OffersAssigned:  assigned.Value(),
	}
	if shed != nil {
		rep.Overload = shed.report()
	}
	for _, op := range opNames {
		snap := latency.With(opLabel(op)).Snapshot()
		st := OpStats{
			Count:  snap.Count,
			Errors: errs.With(opLabel(op)).Value(),
			P50Ms:  snap.Quantile(0.50) * 1000,
			P95Ms:  snap.Quantile(0.95) * 1000,
			P99Ms:  snap.Quantile(0.99) * 1000,
		}
		// An op the run never performed (schedule without -schedule-every)
		// has no distribution — its quantiles are NaN, which the JSON
		// encoder refuses. Leave it out of the report instead.
		if st.Count == 0 && st.Errors == 0 {
			continue
		}
		rep.Ops[op] = st
		rep.TotalOps += st.Count
		rep.TotalErrors += st.Errors
	}
	if elapsed > 0 {
		rep.ThroughputOpsPerSec = float64(rep.TotalOps) / elapsed.Seconds()
	}
	// Best effort: soak tests drive bare market.Server instances that have
	// no /metrics route, and older daemons have no shard families — either
	// way the report simply omits the shard section.
	if shards, err := fetchShardStats(httpClient, cfg.BaseURL); err == nil {
		rep.Shards = shards
	}
	// Same best-effort contract for the KPI report: targets without a /kpi
	// route simply produce a report without the block.
	if kpiRep, err := fetchKPI(httpClient, cfg.BaseURL); err == nil {
		rep.KPI = reconcileKPI(kpiRep, cfg, rep)
	}
	return rep, nil
}

// fetchKPI scrapes the target's KPI report.
func fetchKPI(httpClient *http.Client, baseURL string) (kpi.Report, error) {
	var rep kpi.Report
	resp, err := httpClient.Get(baseURL + "/kpi")
	if err != nil {
		return rep, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return rep, fmt.Errorf("GET /kpi: %s", resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		return rep, err
	}
	return rep, nil
}

// reconcileKPI sums the server-side KPI counts over this run's worker
// owners and diffs them against the client-side ledger. The owner filter
// makes the check robust to traffic the generator did not create (seeded
// offers, other flexload runs against the same daemon).
func reconcileKPI(kpiRep kpi.Report, cfg config, rep Report) *KPIBlock {
	block := &KPIBlock{Report: kpiRep, ReconciliationErrors: []string{}}
	var submitted, accepted, assigned uint64
	for w := 0; w < cfg.Concurrency; w++ {
		v, ok := kpiRep.Owners[fmt.Sprintf("load-%d-w%d", cfg.Seed, w)]
		if !ok {
			continue
		}
		submitted += v.Submitted
		accepted += v.Accepted
		assigned += v.Assigned
	}
	check := func(name string, server, client uint64) {
		if server != client {
			block.ReconciliationErrors = append(block.ReconciliationErrors,
				fmt.Sprintf("%s: server KPI fold has %d, client confirmed %d", name, server, client))
		}
	}
	check("submitted", submitted, rep.OffersSubmitted)
	check("accepted", accepted, rep.OffersAccepted)
	// Client-confirmed assignments are a floor, not an identity: a
	// scheduling round may win the race for an accepted offer (see
	// KPIBlock).
	if assigned < rep.OffersAssigned {
		block.ReconciliationErrors = append(block.ReconciliationErrors,
			fmt.Sprintf("assigned: server KPI fold has %d, below the %d the clients confirmed", assigned, rep.OffersAssigned))
	}
	return block
}

// postScheduleRun triggers one scheduling round on the target daemon.
// Anything but a 200 is an error: the scheduling API answers every
// organic failure with a JSON envelope and a non-200 status.
func postScheduleRun(ctx context.Context, httpClient *http.Client, baseURL string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+"/schedule/run", nil)
	if err != nil {
		return err
	}
	resp, err := httpClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("POST /schedule/run: %s", resp.Status)
	}
	// Drain so the connection is reused.
	_, err = io.Copy(io.Discard, resp.Body)
	return err
}

// fetchShardStats scrapes the target's /metrics JSON exposition and
// assembles the per-shard contention section of the report.
func fetchShardStats(httpClient *http.Client, baseURL string) ([]ShardReport, error) {
	resp, err := httpClient.Get(baseURL + "/metrics?format=json")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /metrics: %s", resp.Status)
	}
	type labelled struct {
		Labels map[string]string `json:"labels"`
		Value  float64           `json:"value"`
	}
	var families map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&families); err != nil {
		return nil, err
	}
	byShard := map[int]*ShardReport{}
	collect := func(family string, set func(*ShardReport, float64)) {
		var vals []labelled
		if raw, ok := families[family]; !ok || json.Unmarshal(raw, &vals) != nil {
			return
		}
		for _, v := range vals {
			k, err := strconv.Atoi(v.Labels["shard"])
			if err != nil {
				continue
			}
			sr, ok := byShard[k]
			if !ok {
				sr = &ShardReport{Shard: k}
				byShard[k] = sr
			}
			set(sr, v.Value)
		}
	}
	collect("market_shard_offers", func(s *ShardReport, v float64) { s.Offers = v })
	collect("market_shard_lock_wait_seconds_total", func(s *ShardReport, v float64) { s.LockWaitSeconds = v })
	collect("market_shard_lock_hold_seconds_total", func(s *ShardReport, v float64) { s.LockHoldSeconds = v })
	collect("market_shard_lock_queue_depth", func(s *ShardReport, v float64) { s.QueueDepth = v })
	if len(byShard) == 0 {
		return nil, nil
	}
	out := make([]ShardReport, 0, len(byShard))
	for _, sr := range byShard {
		out = append(out, *sr)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Shard < out[j].Shard })
	return out, nil
}

// worker is one closed-loop driver: it owns a seeded offer generator and
// pushes offers through the full lifecycle until the context ends.
type worker struct {
	client    *market.Client
	rng       *rand.Rand
	id        string
	latency   *obs.HistogramVec
	errs      *obs.CounterVec
	submitted *obs.Counter
	accepted  *obs.Counter
	assigned  *obs.Counter
	// shed, when non-nil (-overload), absorbs 429/503 responses into the
	// overload accounting instead of the error counters.
	shed *shedTracker
}

func (w worker) loop(ctx context.Context) {
	for i := 0; ctx.Err() == nil; i++ {
		offer := w.makeOffer(i)
		if !w.timed(ctx, "submit", func() error { return w.client.Submit(offer) }) {
			continue
		}
		w.submitted.Inc()
		if !w.timed(ctx, "accept", func() error { return w.client.Accept(offer.ID) }) {
			continue
		}
		w.accepted.Inc()
		energies := make([]float64, len(offer.Profile))
		for k, s := range offer.Profile {
			energies[k] = (s.MinEnergy + s.MaxEnergy) / 2
		}
		if w.timed(ctx, "assign", func() error {
			return w.client.Assign(offer.ID, offer.EarliestStart, energies)
		}) {
			w.assigned.Inc()
		}
		// Sprinkle reads across the write stream at a fixed ratio.
		if i%10 == 5 {
			w.timed(ctx, "stats", func() error { _, err := w.client.Stats(); return err })
		}
		if i%25 == 12 {
			// Paginated read: one bounded page of assigned offers, the way
			// a dashboard or scheduler polls a large store. The raw variant
			// frames the page without materialising records, so the timing
			// measures the server and the transfer, not this process's own
			// reflection decode on the shared CPU.
			w.timed(ctx, "list", func() error {
				_, err := w.client.ListPageRaw(market.ListQuery{States: []market.State{market.Assigned}, Limit: listPageLimit})
				return err
			})
		}
	}
}

// timed runs op, records its latency and outcome, and reports success.
// Calls that fail because the run's deadline expired mid-flight are not
// counted as errors — they are the shutdown, not the server. In
// overload mode a shed response (429/503) is expected behaviour: it
// lands in the shed tracker, and the worker honours the server's
// Retry-After hint before offering more load.
func (w worker) timed(ctx context.Context, op string, fn func() error) bool {
	t0 := time.Now()
	err := fn()
	w.latency.With(opLabel(op)).Observe(time.Since(t0).Seconds())
	if err != nil {
		if ctx.Err() != nil {
			return false
		}
		var shedErr *market.ShedError
		if w.shed != nil && errors.As(err, &shedErr) {
			w.shed.observe(op, shedErr)
			if shedErr.RetryAfter > 0 {
				timer := time.NewTimer(shedErr.RetryAfter)
				select {
				case <-timer.C:
				case <-ctx.Done():
				}
				timer.Stop()
			}
			return false
		}
		w.errs.With(opLabel(op)).Inc()
		return false
	}
	return true
}

// makeOffer builds the i-th offer of this worker's deterministic stream:
// 2–8 slices of 15 minutes with randomised energy bounds, deadlines far
// enough out that they never lapse during a run. The start window sits on
// the 15-minute wall-clock grid so a daemon running scheduling rounds
// (-schedule-every, default resolution) can place the load's offers; the
// truncation moves EarliestStart at most 15 minutes before now+3h, still
// comfortably after the now+2h assignment deadline.
func (w worker) makeOffer(i int) *flexoffer.FlexOffer {
	now := time.Now().UTC().Truncate(time.Second)
	slices := 2 + w.rng.Intn(7)
	profile := make([]flexoffer.Slice, slices)
	for k := range profile {
		lo := 0.1 + w.rng.Float64()
		profile[k] = flexoffer.Slice{
			Duration:  15 * time.Minute,
			MinEnergy: lo,
			MaxEnergy: lo + w.rng.Float64(),
		}
	}
	fo := &flexoffer.FlexOffer{
		ID:             fmt.Sprintf("%s-%06d", w.id, i),
		ConsumerID:     w.id,
		CreationTime:   now,
		AcceptanceTime: now.Add(time.Hour),
		AssignmentTime: now.Add(2 * time.Hour),
		EarliestStart:  now.Add(3 * time.Hour).Truncate(15 * time.Minute),
		LatestStart:    now.Add(8 * time.Hour),
		Profile:        profile,
	}
	if err := fo.Validate(); err != nil {
		// The generator produces valid offers by construction; a failure
		// here is a flexload bug, not a server condition to measure.
		panic(fmt.Sprintf("flexload: generated invalid offer: %v", err))
	}
	return fo
}
