// Command flexload is a closed-loop load generator for the mirabeld
// flex-offer API. Each of -c workers drives the full offer lifecycle
// against a running daemon — submit, accept, assign, with periodic list
// and stats reads — as fast as the server answers, for -duration.
// Latencies are recorded per operation in internal/obs histograms and a
// machine-readable JSON report (p50/p95/p99 per op, overall throughput)
// is written to -report.
//
// Usage:
//
//	flexload -base http://127.0.0.1:7654 -c 8 -duration 30s -seed 42 -report BENCH_4.json
//
// Offer construction is seeded: worker w derives its generator from
// -seed+w, so two runs with the same seed and concurrency submit the
// same offer stream. Against a fault-injecting server (mirabeld
// -fault-profile), the error counts in the report measure how much of
// the injected fault rate the client side observed.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"sync"
	"time"

	"repro/internal/flexoffer"
	"repro/internal/market"
	"repro/internal/obs"
)

func main() {
	cfg := config{}
	flag.StringVar(&cfg.BaseURL, "base", "http://127.0.0.1:7654", "mirabeld base URL")
	flag.IntVar(&cfg.Concurrency, "c", 4, "concurrent workers")
	flag.DurationVar(&cfg.Duration, "duration", 10*time.Second, "how long to drive load")
	flag.Int64Var(&cfg.Seed, "seed", 1, "offer-stream seed (worker w uses seed+w)")
	report := flag.String("report", "-", `report output path ("-" = stdout)`)
	flag.Parse()

	rep, err := run(context.Background(), cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "flexload: %v\n", err)
		os.Exit(1)
	}
	out := os.Stdout
	if *report != "-" {
		f, err := os.Create(*report)
		if err != nil {
			fmt.Fprintf(os.Stderr, "flexload: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "flexload: %v\n", err)
		os.Exit(1)
	}
}

// config parameterises one load run.
type config struct {
	// BaseURL is the target daemon's root URL.
	BaseURL string
	// Concurrency is the number of closed-loop workers.
	Concurrency int
	// Duration bounds the run.
	Duration time.Duration
	// Seed derives each worker's offer stream (worker w uses Seed+w).
	Seed int64
	// HTTPClient overrides the transport (tests inject the httptest
	// server's client); nil means a 10s-timeout default client.
	HTTPClient *http.Client
}

// OpStats summarises one operation's latency distribution in the report.
type OpStats struct {
	Count  uint64  `json:"count"`
	Errors uint64  `json:"errors"`
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
}

// Report is flexload's machine-readable result — the schema committed as
// BENCH_4.json and tracked across PRs.
type Report struct {
	BaseURL             string             `json:"base_url"`
	Seed                int64              `json:"seed"`
	Concurrency         int                `json:"concurrency"`
	DurationSeconds     float64            `json:"duration_seconds"`
	Ops                 map[string]OpStats `json:"ops"`
	TotalOps            uint64             `json:"total_ops"`
	TotalErrors         uint64             `json:"total_errors"`
	ThroughputOpsPerSec float64            `json:"throughput_ops_per_sec"`
	OffersSubmitted     uint64             `json:"offers_submitted"`
	OffersAccepted      uint64             `json:"offers_accepted"`
	OffersAssigned      uint64             `json:"offers_assigned"`
}

// opNames are the operations a worker performs, in lifecycle order.
var opNames = []string{"submit", "accept", "assign", "list", "stats"}

// opLabel bounds the metric label set to the known operations, keeping
// the per-op vec families at fixed cardinality.
func opLabel(op string) string {
	switch op {
	case "submit":
		return "submit"
	case "accept":
		return "accept"
	case "assign":
		return "assign"
	case "list":
		return "list"
	case "stats":
		return "stats"
	default:
		return "other"
	}
}

// run drives the closed loop and assembles the report. It is the testable
// core of the command: the soak test calls it against an httptest server.
func run(ctx context.Context, cfg config) (Report, error) {
	if cfg.Concurrency <= 0 {
		return Report{}, fmt.Errorf("concurrency must be positive, got %d", cfg.Concurrency)
	}
	if cfg.Duration <= 0 {
		return Report{}, fmt.Errorf("duration must be positive, got %v", cfg.Duration)
	}
	httpClient := cfg.HTTPClient
	if httpClient == nil {
		httpClient = &http.Client{Timeout: 10 * time.Second}
	}

	reg := obs.NewRegistry()
	latency := reg.NewHistogramVec("flexload_op_seconds", "per-operation latency", nil, "op")
	errs := reg.NewCounterVec("flexload_op_errors_total", "per-operation errors", "op")
	var submitted, accepted, assigned obs.Counter

	ctx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()
	start := time.Now()

	var wg sync.WaitGroup
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			worker{
				client:    &market.Client{BaseURL: cfg.BaseURL, HTTPClient: httpClient},
				rng:       rand.New(rand.NewSource(cfg.Seed + int64(w))),
				id:        fmt.Sprintf("load-%d-w%d", cfg.Seed, w),
				latency:   latency,
				errs:      errs,
				submitted: &submitted,
				accepted:  &accepted,
				assigned:  &assigned,
			}.loop(ctx)
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := Report{
		BaseURL:         cfg.BaseURL,
		Seed:            cfg.Seed,
		Concurrency:     cfg.Concurrency,
		DurationSeconds: elapsed.Seconds(),
		Ops:             make(map[string]OpStats, len(opNames)),
		OffersSubmitted: submitted.Value(),
		OffersAccepted:  accepted.Value(),
		OffersAssigned:  assigned.Value(),
	}
	for _, op := range opNames {
		snap := latency.With(opLabel(op)).Snapshot()
		st := OpStats{
			Count:  snap.Count,
			Errors: errs.With(opLabel(op)).Value(),
			P50Ms:  snap.Quantile(0.50) * 1000,
			P95Ms:  snap.Quantile(0.95) * 1000,
			P99Ms:  snap.Quantile(0.99) * 1000,
		}
		rep.Ops[op] = st
		rep.TotalOps += st.Count
		rep.TotalErrors += st.Errors
	}
	if elapsed > 0 {
		rep.ThroughputOpsPerSec = float64(rep.TotalOps) / elapsed.Seconds()
	}
	return rep, nil
}

// worker is one closed-loop driver: it owns a seeded offer generator and
// pushes offers through the full lifecycle until the context ends.
type worker struct {
	client    *market.Client
	rng       *rand.Rand
	id        string
	latency   *obs.HistogramVec
	errs      *obs.CounterVec
	submitted *obs.Counter
	accepted  *obs.Counter
	assigned  *obs.Counter
}

func (w worker) loop(ctx context.Context) {
	for i := 0; ctx.Err() == nil; i++ {
		offer := w.makeOffer(i)
		if !w.timed(ctx, "submit", func() error { return w.client.Submit(offer) }) {
			continue
		}
		w.submitted.Inc()
		if !w.timed(ctx, "accept", func() error { return w.client.Accept(offer.ID) }) {
			continue
		}
		w.accepted.Inc()
		energies := make([]float64, len(offer.Profile))
		for k, s := range offer.Profile {
			energies[k] = (s.MinEnergy + s.MaxEnergy) / 2
		}
		if w.timed(ctx, "assign", func() error {
			return w.client.Assign(offer.ID, offer.EarliestStart, energies)
		}) {
			w.assigned.Inc()
		}
		// Sprinkle reads across the write stream at a fixed ratio.
		if i%10 == 5 {
			w.timed(ctx, "stats", func() error { _, err := w.client.Stats(); return err })
		}
		if i%25 == 12 {
			w.timed(ctx, "list", func() error { _, err := w.client.List("assigned"); return err })
		}
	}
}

// timed runs op, records its latency and outcome, and reports success.
// Calls that fail because the run's deadline expired mid-flight are not
// counted as errors — they are the shutdown, not the server.
func (w worker) timed(ctx context.Context, op string, fn func() error) bool {
	t0 := time.Now()
	err := fn()
	w.latency.With(opLabel(op)).Observe(time.Since(t0).Seconds())
	if err != nil {
		if ctx.Err() != nil {
			return false
		}
		w.errs.With(opLabel(op)).Inc()
		return false
	}
	return true
}

// makeOffer builds the i-th offer of this worker's deterministic stream:
// 2–8 slices of 15 minutes with randomised energy bounds, deadlines far
// enough out that they never lapse during a run.
func (w worker) makeOffer(i int) *flexoffer.FlexOffer {
	now := time.Now().UTC().Truncate(time.Second)
	slices := 2 + w.rng.Intn(7)
	profile := make([]flexoffer.Slice, slices)
	for k := range profile {
		lo := 0.1 + w.rng.Float64()
		profile[k] = flexoffer.Slice{
			Duration:  15 * time.Minute,
			MinEnergy: lo,
			MaxEnergy: lo + w.rng.Float64(),
		}
	}
	fo := &flexoffer.FlexOffer{
		ID:             fmt.Sprintf("%s-%06d", w.id, i),
		ConsumerID:     w.id,
		CreationTime:   now,
		AcceptanceTime: now.Add(time.Hour),
		AssignmentTime: now.Add(2 * time.Hour),
		EarliestStart:  now.Add(3 * time.Hour),
		LatestStart:    now.Add(8 * time.Hour),
		Profile:        profile,
	}
	if err := fo.Validate(); err != nil {
		// The generator produces valid offers by construction; a failure
		// here is a flexload bug, not a server condition to measure.
		panic(fmt.Sprintf("flexload: generated invalid offer: %v", err))
	}
	return fo
}
