package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"repro/internal/admission"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/flexoffer"
	"repro/internal/kpi"
	"repro/internal/market"
	"repro/internal/num"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/sched"
	"repro/internal/timeseries"
)

// The soak tests drive the full extraction→market path under a nonzero
// fault profile and the race detector (make soak / CI soak-short). The
// contract under test is zero lost offers: every extracted offer lands in
// the store (accepted or semantically rejected) or in the dead-letter
// set; nothing vanishes inside the retry machinery.

var soakStart = time.Date(2012, 6, 4, 0, 0, 0, 0, time.UTC)

// soakProfile is the reference fault profile: ~32% of sink operations are
// perturbed, spread over every fault kind.
const soakProfile = "seed=42,error=0.15,latency=0.02:2ms,panic=0.05,partial=0.1"

// soakSeries builds a peaky household series the peak extractor finds
// offers in.
func soakSeries(days int, phase float64) *timeseries.Series {
	res := 15 * time.Minute
	perDay := int((24 * time.Hour) / res)
	vals := make([]float64, days*perDay)
	for i := range vals {
		frac := float64(i%perDay) / float64(perDay) * 24
		vals[i] = 0.2 + 0.6*math.Exp(-(frac-19-phase)*(frac-19-phase)/6)
	}
	return timeseries.MustNew(soakStart, res, vals)
}

func soakJobs(n int) []pipeline.Job {
	jobs := make([]pipeline.Job, n)
	for i := range jobs {
		jobs[i] = pipeline.Job{
			ID:     "soak-" + string(rune('a'+i%26)) + string(rune('0'+i/26)),
			Series: soakSeries(2, float64(i%5)/2),
		}
	}
	return jobs
}

func soakExtractor(j pipeline.Job) core.Extractor {
	p := core.DefaultParams()
	p.ConsumerID = j.ID
	p.Seed = int64(len(j.ID)) + int64(j.ID[len(j.ID)-1])
	return &core.PeakExtractor{Params: p}
}

// soakPolicy keeps retry backoffs fast enough for a test loop.
func soakPolicy() pipeline.RetryPolicy {
	return pipeline.RetryPolicy{
		MaxAttempts:    4,
		BaseBackoff:    time.Millisecond,
		MaxBackoff:     5 * time.Millisecond,
		Jitter:         0.2,
		JitterSeed:     42,
		AttemptTimeout: time.Second,
	}
}

// pipelinePhase runs one extraction batch through a faulty store sink and
// returns the full accounting.
type phaseResult struct {
	stats      pipeline.Stats
	submitted  int
	rejected   int
	dead       int
	retries    int
	faultTotal uint64
	faults     map[string]uint64
	// deadByOwner attributes dead-lettered offers to their ConsumerID, the
	// attribution the KPI fold expects via ObserveDeadLetters.
	deadByOwner map[string]uint64
}

func runPipelinePhase(t *testing.T, jobs []pipeline.Job, workers int) phaseResult {
	t.Helper()
	// Logical clock before every extracted deadline, as a replay
	// deployment would pin it.
	clock := soakStart.Add(-48 * time.Hour)
	return runPipelinePhaseOn(t, market.NewStore(func() time.Time { return clock }), jobs, workers)
}

// runPipelinePhaseOn is runPipelinePhase against a caller-owned store, so
// a test can hang observers (the KPI event fold) off the store before the
// faulty traffic starts.
func runPipelinePhaseOn(t *testing.T, store *market.Store, jobs []pipeline.Job, workers int) phaseResult {
	t.Helper()
	prof, err := faultinject.ParseProfile(soakProfile)
	if err != nil {
		t.Fatal(err)
	}
	schedule := faultinject.NewSchedule(prof)
	storeSink := &pipeline.StoreSink{Store: store}
	resilient := pipeline.NewResilientSink(faultinject.WrapSink(storeSink, schedule), soakPolicy(), nil)

	stats, err := pipeline.RunJobs(context.Background(),
		pipeline.Config{Workers: workers, NewExtractor: soakExtractor}, jobs, resilient)
	if err != nil {
		t.Fatalf("RunJobs: %v", err)
	}
	submitted, rejected := storeSink.Counts()
	faults := schedule.Counts()
	deadByOwner := make(map[string]uint64)
	for _, dl := range resilient.DeadLetters() {
		for _, fo := range dl.Offers {
			deadByOwner[fo.ConsumerID]++
		}
	}
	return phaseResult{
		stats:       stats,
		submitted:   submitted,
		rejected:    rejected,
		dead:        resilient.DeadLetteredOffers(),
		retries:     resilient.Retries(),
		faultTotal:  faults["total"],
		faults:      faults,
		deadByOwner: deadByOwner,
	}
}

// TestSoakPipelineZeroLostOffers runs extractor → pipeline → faulty store
// and closes the books: emitted == stored + rejected + dead-lettered.
func TestSoakPipelineZeroLostOffers(t *testing.T) {
	nJobs := 24
	if testing.Short() {
		nJobs = 8
	}
	res := runPipelinePhase(t, soakJobs(nJobs), 4)

	if res.stats.OffersEmitted == 0 {
		t.Fatal("extraction emitted no offers; the soak exercised nothing")
	}
	if res.faultTotal == 0 || res.faults[faultinject.Error.String()] == 0 {
		t.Fatalf("fault schedule idle: %v", res.faults)
	}
	if got := res.submitted + res.rejected + res.dead; got != res.stats.OffersEmitted {
		t.Fatalf("lost offers: emitted %d, accounted %d (stored %d + rejected %d + dead %d)",
			res.stats.OffersEmitted, got, res.submitted, res.rejected, res.dead)
	}
	if res.stats.DeadLettered != res.dead || res.stats.SinkRetries != res.retries {
		t.Fatalf("Stats (%d dead, %d retries) disagrees with sink (%d, %d)",
			res.stats.DeadLettered, res.stats.SinkRetries, res.dead, res.retries)
	}
	if res.retries == 0 {
		t.Fatal("no retries under a 32% fault rate; the resilient path was bypassed")
	}
	if counts := res.stats.OffersEmitted; res.dead > counts/2 {
		t.Fatalf("%d of %d offers dead-lettered; retry budget too small for the profile", res.dead, counts)
	}
}

// TestSoakFaultReplayDeterminism runs the same single-worker batch twice
// with the same fault-schedule seed and requires identical fault
// sequences and identical delivery accounting — the property that makes
// a soak failure reproducible from its seed.
func TestSoakFaultReplayDeterminism(t *testing.T) {
	nJobs := 12
	if testing.Short() {
		nJobs = 6
	}
	first := runPipelinePhase(t, soakJobs(nJobs), 1)
	second := runPipelinePhase(t, soakJobs(nJobs), 1)

	if !reflect.DeepEqual(first.faults, second.faults) {
		t.Fatalf("fault sequences diverged for one seed:\n  first:  %v\n  second: %v", first.faults, second.faults)
	}
	if first.submitted != second.submitted || first.rejected != second.rejected ||
		first.dead != second.dead || first.retries != second.retries {
		t.Fatalf("delivery accounting diverged for one seed:\n  first:  %+v\n  second: %+v", first, second)
	}
}

// TestSoakHTTPLoadUnderFaults drives the flexload closed loop against a
// fault-injecting market server and checks (a) the client observed the
// injected faults and (b) the store holds exactly the offers the clients
// saw succeed — the zero-lost-offers contract on the HTTP path.
func TestSoakHTTPLoadUnderFaults(t *testing.T) {
	prof, err := faultinject.ParseProfile("seed=7,error=0.1,latency=0.05:2ms,panic=0.05")
	if err != nil {
		t.Fatal(err)
	}
	schedule := faultinject.NewSchedule(prof)
	store := market.NewStore(nil)
	reg := obs.NewRegistry()
	metrics := obs.NewHTTPMetrics(reg, "soak")
	srv := httptest.NewServer(market.NewServer(store,
		market.WithObservability(metrics, nil),
		market.WithMiddleware(func(next http.Handler) http.Handler {
			return faultinject.Middleware(next, schedule)
		}),
	))
	defer srv.Close()

	duration := 4 * time.Second
	if testing.Short() {
		duration = 1500 * time.Millisecond
	}
	rep, err := run(context.Background(), config{
		BaseURL:     srv.URL,
		Concurrency: 4,
		Duration:    duration,
		Seed:        42,
		HTTPClient:  srv.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}

	if rep.TotalOps == 0 || rep.ThroughputOpsPerSec <= 0 {
		t.Fatalf("load loop idle: %+v", rep)
	}
	if rep.OffersSubmitted == 0 {
		t.Fatal("no offers submitted")
	}
	if rep.TotalErrors == 0 {
		t.Fatalf("no client-side errors under a 20%% fault profile (faults: %v)", schedule.Counts())
	}
	if schedule.Counts()["total"] == 0 {
		t.Fatal("fault middleware never consulted the schedule")
	}
	// Recovered injected panics must be visible in the server metrics —
	// the middleware composition under test.
	if schedule.Counts()[faultinject.Panic.String()] > 0 && metrics.Panics.Value() == 0 {
		t.Fatal("injected panics not recovered/counted by the obs middleware")
	}
	// Zero lost offers over HTTP: the store holds exactly the submissions
	// the clients saw succeed.
	if got := len(store.List()); got != int(rep.OffersSubmitted) {
		t.Fatalf("store holds %d offers, clients saw %d submissions succeed", got, rep.OffersSubmitted)
	}
	counts := store.Stats()
	total := counts.Offered + counts.Accepted + counts.Rejected + counts.Assigned + counts.Expired
	if total != int(rep.OffersSubmitted) {
		t.Fatalf("store states sum to %d, want %d", total, rep.OffersSubmitted)
	}
	if counts.Assigned != int(rep.OffersAssigned) {
		t.Fatalf("store assigned %d, clients completed %d assignments", counts.Assigned, rep.OffersAssigned)
	}
	// The latency percentiles the report carries must be populated.
	sub := rep.Ops["submit"]
	if sub.Count == 0 || math.IsNaN(sub.P50Ms) || sub.P50Ms <= 0 {
		t.Fatalf("submit stats unpopulated: %+v", sub)
	}
}

// TestSoakScheduleRound interleaves scheduling rounds with the lifecycle
// load: the flexload loop runs with -schedule-every against a daemon-shaped
// handler (market API plus the scheduling API), with a few accepted offers
// seeded outside the workers' ID space so the aggregation is never empty.
// At least one round must run mid-soak with zero schedule-op errors, and
// the seeded offers must come out the other side assigned by the
// scheduler — the live extract→aggregate→schedule→assign loop closing
// under concurrent load.
func TestSoakScheduleRound(t *testing.T) {
	store := market.NewStore(nil)
	svc, err := sched.New(sched.Config{
		Store:      store,
		Supply:     sched.FlatSupply(1000),
		Horizon:    6 * time.Hour,
		Resolution: 15 * time.Minute,
	})
	if err != nil {
		t.Fatalf("sched.New: %v", err)
	}
	defer svc.Close()
	kpiSvc, err := kpi.NewService(kpi.ServiceConfig{Store: store})
	if err != nil {
		t.Fatalf("kpi.NewService: %v", err)
	}
	defer kpiSvc.Close()

	mux := http.NewServeMux()
	mux.Handle("/", market.NewServer(store))
	mux.Handle("/aggregates", svc.Handler())
	mux.Handle("/schedule", svc.Handler())
	mux.Handle("/schedule/", svc.Handler())
	mux.Handle("/kpi", kpiSvc.Handler())
	srv := httptest.NewServer(mux)
	defer srv.Close()

	// Accepted offers outside the load-%d-w%d worker ID space: stable
	// material for the rounds, aligned to the 15-minute scheduling grid.
	now := time.Now().UTC()
	est := now.Add(time.Hour).Truncate(15 * time.Minute)
	for i := 0; i < 4; i++ {
		fo := &flexoffer.FlexOffer{
			ID:             fmt.Sprintf("sched-ev-%d", i),
			ConsumerID:     "sched-soak",
			CreationTime:   now,
			AcceptanceTime: now.Add(30 * time.Minute),
			AssignmentTime: now.Add(45 * time.Minute),
			EarliestStart:  est,
			LatestStart:    est.Add(2 * time.Hour),
			Profile:        flexoffer.UniformProfile(4, 15*time.Minute, 0.5, 1.0),
		}
		if err := store.Submit(fo); err != nil {
			t.Fatalf("seed submit %d: %v", i, err)
		}
		if err := store.Accept(fo.ID); err != nil {
			t.Fatalf("seed accept %d: %v", i, err)
		}
	}

	duration := 2 * time.Second
	if testing.Short() {
		duration = time.Second
	}
	rep, err := run(context.Background(), config{
		BaseURL:       srv.URL,
		Concurrency:   4,
		Duration:      duration,
		Seed:          11,
		ScheduleEvery: duration / 4,
		HTTPClient:    srv.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}

	schedOp := rep.Ops["schedule"]
	if schedOp.Count == 0 {
		t.Fatal("no scheduling round ran mid-soak")
	}
	if schedOp.Errors != 0 {
		t.Fatalf("%d of %d scheduling rounds failed", schedOp.Errors, schedOp.Count)
	}
	if rep.OffersSubmitted == 0 {
		t.Fatal("load loop submitted nothing alongside the rounds")
	}
	st := svc.Status()
	if st.Runs == 0 || st.LastRun == nil {
		t.Fatalf("service saw no rounds: %+v", st)
	}
	if st.Decisions == 0 {
		t.Fatalf("rounds ran but nothing was scheduled: %+v", st)
	}
	// The seeded offers were accepted and schedulable; the rounds must
	// have assigned them (workers never touch the sched-ev-* IDs).
	assigned := 0
	for i := 0; i < 4; i++ {
		rec, ok := store.Get(fmt.Sprintf("sched-ev-%d", i))
		if !ok {
			t.Fatalf("seed offer %d vanished", i)
		}
		if rec.State == market.Assigned {
			assigned++
		}
	}
	if assigned == 0 {
		t.Fatal("no seeded offer was assigned by a scheduling round")
	}
	// The report carries the server's KPI block, and the generator's own
	// ledger reconciles against the server-side fold with zero errors.
	if rep.KPI == nil {
		t.Fatal("report has no KPI block despite a /kpi route")
	}
	if len(rep.KPI.ReconciliationErrors) != 0 {
		t.Fatalf("KPI reconciliation failed: %v", rep.KPI.ReconciliationErrors)
	}
	if rep.KPI.Report.Global.Submitted == 0 {
		t.Fatal("KPI block is empty despite live traffic")
	}
}

// TestSoakJournaledStoreSurvivesRestart is the recovery-aware soak: the
// full flexload closed loop runs against a journaled store (fsync on
// every append, automatic snapshots), the daemon "restarts" by closing
// and reopening the journal, and the recovered store must hold exactly
// the lifecycle state the clients saw acknowledged — zero lost offers
// across a restart, not just across faults.
func TestSoakJournaledStoreSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	store, journal, err := market.OpenJournaled(market.JournalOptions{Dir: dir, SnapshotEvery: 64})
	if err != nil {
		t.Fatalf("OpenJournaled: %v", err)
	}
	srv := httptest.NewServer(market.NewServer(store))

	duration := 2 * time.Second
	if testing.Short() {
		duration = time.Second
	}
	rep, err := run(context.Background(), config{
		BaseURL:     srv.URL,
		Concurrency: 4,
		Duration:    duration,
		Seed:        7,
		HTTPClient:  srv.Client(),
	})
	srv.Close()
	if err != nil {
		t.Fatal(err)
	}
	if rep.OffersSubmitted == 0 {
		t.Fatal("load loop submitted nothing; the restart test exercised nothing")
	}
	before, err := json.Marshal(store.List())
	if err != nil {
		t.Fatal(err)
	}
	if err := journal.Close(); err != nil {
		t.Fatalf("journal close: %v", err)
	}

	store2, journal2, err := market.OpenJournaled(market.JournalOptions{Dir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer journal2.Close()
	after, err := json.Marshal(store2.List())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("recovered store state differs from the state at shutdown")
	}
	if got := len(store2.List()); got != int(rep.OffersSubmitted) {
		t.Fatalf("recovered %d offers, clients saw %d submissions succeed", got, rep.OffersSubmitted)
	}
	if counts := store2.Stats(); counts.Assigned != int(rep.OffersAssigned) {
		t.Fatalf("recovered %d assignments, clients completed %d", counts.Assigned, rep.OffersAssigned)
	}
	rec := journal2.Recovery()
	if rec.Offers != int(rep.OffersSubmitted) {
		t.Fatalf("recovery reports %d offers, want %d", rec.Offers, rep.OffersSubmitted)
	}
}

// TestSoakKPIConsistency closes the books on the KPI fold: the live
// tracker follows a store that is being written through the faulty retry
// pipeline, and at the end (a) the KPI ledger must reconcile exactly with
// the zero-lost-offers accounting (emitted == stored + rejected +
// dead-lettered, with the KPI report holding the stored and dead counts),
// and (b) GET /kpi must agree with a batch recompute over the paginated
// /offers listing — counts bitwise, energy sums within float tolerance
// (the two folds accumulate in different event orders).
func TestSoakKPIConsistency(t *testing.T) {
	clock := soakStart.Add(-48 * time.Hour)
	store := market.NewStore(func() time.Time { return clock })
	cfg := kpi.Config{Resolution: 15 * time.Minute}
	svc, err := kpi.NewService(kpi.ServiceConfig{Store: store, Config: cfg})
	if err != nil {
		t.Fatalf("kpi.NewService: %v", err)
	}
	defer svc.Close()

	nJobs := 16
	if testing.Short() {
		nJobs = 6
	}
	res := runPipelinePhaseOn(t, store, soakJobs(nJobs), 4)
	if res.stats.OffersEmitted == 0 {
		t.Fatal("extraction emitted no offers; the soak exercised nothing")
	}

	// Move a slice of the survivors through the rest of the lifecycle so
	// the derived KPIs (shift factor, peak reduction, realisation) are
	// non-trivial, not just the submission counters.
	assigned := 0
	for _, rec := range store.List(market.Offered) {
		if assigned == 8 {
			break
		}
		if err := store.Accept(rec.Offer.ID); err != nil {
			t.Fatalf("accept %s: %v", rec.Offer.ID, err)
		}
		energies := make([]float64, len(rec.Offer.Profile))
		for i, s := range rec.Offer.Profile {
			energies[i] = s.AvgEnergy()
		}
		if _, err := store.Assign(rec.Offer.ID, rec.Offer.EarliestStart, energies); err != nil {
			t.Fatalf("assign %s: %v", rec.Offer.ID, err)
		}
		assigned++
	}
	if assigned == 0 {
		t.Fatal("no offered records survived the faulty phase")
	}

	// The dead-letter set arrives out of band, attributed per owner the
	// way a daemon would feed it from the pipeline accounting.
	for owner, n := range res.deadByOwner {
		svc.ObserveDeadLetters(owner, n)
	}

	// (a) The KPI ledger reconciles with the zero-lost-offers contract.
	if got := res.submitted + res.rejected + res.dead; got != res.stats.OffersEmitted {
		t.Fatalf("lost offers: emitted %d, accounted %d", res.stats.OffersEmitted, got)
	}
	rep := svc.Report()
	if rep.Global.Submitted != uint64(res.submitted) {
		t.Fatalf("KPI submitted %d, store sink stored %d", rep.Global.Submitted, res.submitted)
	}
	if rep.Global.DeadLettered != uint64(res.dead) {
		t.Fatalf("KPI dead-lettered %d, resilient sink recorded %d", rep.Global.DeadLettered, res.dead)
	}
	if rep.Global.Assigned != uint64(assigned) {
		t.Fatalf("KPI assigned %d, test assigned %d", rep.Global.Assigned, assigned)
	}
	wantLoss := float64(res.dead) / float64(res.submitted+res.dead)
	if !num.EqTol(rep.Global.DeadLetterLossRatio, wantLoss, 1e-9) {
		t.Fatalf("dead-letter loss ratio %v, want %v", rep.Global.DeadLetterLossRatio, wantLoss)
	}

	// (b) GET /kpi against a daemon-shaped handler agrees with a batch
	// recompute over the paginated /offers walk.
	mux := http.NewServeMux()
	mux.Handle("/", market.NewServer(store))
	mux.Handle("/kpi", svc.Handler())
	srv := httptest.NewServer(mux)
	defer srv.Close()

	var httpRep kpi.Report
	resp, err := srv.Client().Get(srv.URL + "/kpi")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /kpi = %s", resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(&httpRep); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	client := &market.Client{BaseURL: srv.URL, HTTPClient: srv.Client()}
	var records []market.Record
	q := market.ListQuery{Limit: 5}
	pages := 0
	for {
		page, err := client.ListPage(q)
		if err != nil {
			t.Fatalf("page %d: %v", pages, err)
		}
		records = append(records, page.Records...)
		pages++
		if page.NextCursor == "" {
			break
		}
		q.Cursor = page.NextCursor
	}
	if pages < 2 {
		t.Fatalf("pagination not exercised: %d records in %d page(s)", len(records), pages)
	}
	batchRep, err := kpi.FromRecords(cfg, records, res.deadByOwner)
	if err != nil {
		t.Fatalf("FromRecords: %v", err)
	}

	// Counts must match bitwise; energy folds accumulated in different
	// orders (live event order vs pagination order) may differ in the
	// last ulps.
	g, b := httpRep.Global, batchRep.Global
	if g.Submitted != b.Submitted || g.Accepted != b.Accepted || g.Rejected != b.Rejected ||
		g.Assigned != b.Assigned || g.DeadLettered != b.DeadLettered {
		t.Fatalf("count mismatch:\n  /kpi:  %+v\n  batch: %+v", g.Totals, b.Totals)
	}
	for _, c := range []struct {
		name      string
		live, rec float64
	}{
		{"offered_kwh", g.OfferedKWh, b.OfferedKWh},
		{"assigned_kwh", g.AssignedKWh, b.AssignedKWh},
		{"off_peak_assigned_kwh", g.OffPeakAssignedKWh, b.OffPeakAssignedKWh},
		{"baseline_peak_kwh", g.BaselinePeakKWh, b.BaselinePeakKWh},
		{"realised_peak_kwh", g.RealisedPeakKWh, b.RealisedPeakKWh},
		{"shift_factor", g.ShiftFactor, b.ShiftFactor},
		{"peak_reduction", g.PeakReduction, b.PeakReduction},
		{"energy_realisation", g.EnergyRealisation, b.EnergyRealisation},
		{"time_flex_use", g.TimeFlexUse, b.TimeFlexUse},
		{"dead_letter_loss_ratio", g.DeadLetterLossRatio, b.DeadLetterLossRatio},
	} {
		if !num.EqTol(c.live, c.rec, 1e-6) {
			t.Errorf("%s: /kpi %v vs batch recompute %v", c.name, c.live, c.rec)
		}
	}
	if len(httpRep.Owners) != len(batchRep.Owners) {
		t.Fatalf("owner sets differ: /kpi %d vs batch %d", len(httpRep.Owners), len(batchRep.Owners))
	}
	for owner, lv := range httpRep.Owners {
		bv, ok := batchRep.Owners[owner]
		if !ok {
			t.Fatalf("owner %q missing from batch recompute", owner)
		}
		if lv.Submitted != bv.Submitted || lv.Assigned != bv.Assigned || lv.DeadLettered != bv.DeadLettered {
			t.Errorf("owner %q counts: /kpi %+v vs batch %+v", owner, lv.Totals, bv.Totals)
		}
	}
}

// overloadHandler assembles a daemon-shaped surface with tight
// admission limits — write capacity far below the offered concurrency —
// the way run() wires mirabeld, returning the controller and registry
// for assertions. Every non-ops request carries a 2ms service cost: the
// in-memory store answers in microseconds, far faster than a store
// doing real work, and without the cost requests never overlap inside
// the limiter and nothing sheds.
func overloadHandler(store *market.Store, kpiSvc *kpi.Service) (http.Handler, *admission.Controller, *obs.Registry) {
	reg := obs.NewRegistry()
	obs.RegisterRuntimeMetrics(reg)
	mux := http.NewServeMux()
	mux.Handle("/", market.NewServer(store))
	if kpiSvc != nil {
		mux.Handle("/kpi", kpiSvc.Handler())
	}
	mux.Handle("/metrics", reg.Handler())
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(2 * time.Millisecond)
		mux.ServeHTTP(w, r)
	})
	ctrl := admission.NewController(admission.Config{
		Reads:  admission.Limits{MaxConcurrent: 2, MaxQueue: 2, MaxWait: 5 * time.Millisecond, RetryAfter: time.Second},
		Writes: admission.Limits{MaxConcurrent: 2, MaxQueue: 2, MaxWait: 5 * time.Millisecond, RetryAfter: time.Second},
	})
	admission.RegisterMetrics(reg, ctrl)
	h := admission.WithTimeout(ctrl.Middleware(slow), 5*time.Second,
		func(r *http.Request) bool { return ctrl.ClassOf(r) == admission.ClassOps })
	return h, ctrl, reg
}

// TestSoakOverload drives flexload -overload at many times the admission
// capacity and checks the full overload contract: the server sheds with
// 429/503 and every shed carries Retry-After; no acked offer is lost
// (the store holds exactly the client-confirmed submissions); the
// bounded KPI subscription stays under its high-water mark and resyncs
// via replay to a report that matches the store; and the admission_*
// metric families account the sheds.
func TestSoakOverload(t *testing.T) {
	store := market.NewStore(nil)
	const highWater = 64
	kpiSvc, err := kpi.NewService(kpi.ServiceConfig{Store: store, EventHighWater: highWater})
	if err != nil {
		t.Fatalf("kpi.NewService: %v", err)
	}
	defer kpiSvc.Close()

	h, ctrl, reg := overloadHandler(store, kpiSvc)
	srv := httptest.NewServer(h)
	defer srv.Close()

	duration := 3 * time.Second
	if testing.Short() {
		duration = 1500 * time.Millisecond
	}
	rep, err := run(context.Background(), config{
		BaseURL:     srv.URL,
		Concurrency: 8, // 4x the write capacity of 2
		Duration:    duration,
		Seed:        10,
		Overload:    true,
		HTTPClient:  srv.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}

	if rep.Overload == nil {
		t.Fatal("overload run produced no Overload block")
	}
	ov := rep.Overload
	if ov.Shed429+ov.Shed503 == 0 {
		t.Fatalf("8 workers against capacity 1 produced zero sheds: %+v", ov)
	}
	if !ov.RetryAfterCompliant {
		t.Fatalf("shed responses missing Retry-After: %+v", ov)
	}
	if ov.MaxRetryAfterSeconds <= 0 {
		t.Fatalf("no Retry-After hint recorded: %+v", ov)
	}
	if rep.OffersSubmitted == 0 {
		t.Fatal("overload shed everything; no admitted traffic to verify")
	}
	// Sheds are not errors in -overload mode; transport-level errors
	// should be absent against a healthy local server.
	if rep.TotalErrors > 0 {
		t.Errorf("overload run counted %d errors; sheds must land in the overload block", rep.TotalErrors)
	}

	// Zero acked-offer loss: the store holds exactly the submissions the
	// clients saw acknowledged with 2xx.
	if got := len(store.List()); got != int(rep.OffersSubmitted) {
		t.Fatalf("store holds %d offers, clients saw %d acked submissions", got, rep.OffersSubmitted)
	}

	// The bounded KPI subscription was never drained mid-run, so the
	// write volume must have overflowed its high-water mark; the first
	// read resyncs via replay and must agree exactly with the store.
	kpiRep := kpiSvc.Report()
	if kpiSvc.Resyncs() == 0 {
		t.Fatalf("KPI subscription never lagged despite %d writes against high-water %d",
			rep.OffersSubmitted, highWater)
	}
	if kpiRep.Global.Submitted != rep.OffersSubmitted {
		t.Fatalf("resynced KPI fold has %d submissions, store acked %d",
			kpiRep.Global.Submitted, rep.OffersSubmitted)
	}
	if kpiRep.Global.Assigned != rep.OffersAssigned {
		t.Fatalf("resynced KPI fold has %d assignments, clients confirmed %d",
			kpiRep.Global.Assigned, rep.OffersAssigned)
	}

	// Server-side accounting agrees: admission_* families saw the sheds,
	// and the write class is back to zero in-flight after the run.
	writeStats := ctrl.Stats(admission.ClassWrite)
	readStats := ctrl.Stats(admission.ClassRead)
	if writeStats.ShedTotal()+readStats.ShedTotal() == 0 {
		t.Fatal("admission controller recorded no sheds")
	}
	if writeStats.InFlight != 0 || writeStats.Queued != 0 {
		t.Fatalf("write class not drained after run: %+v", writeStats)
	}
	var sb bytes.Buffer
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{"admission_shed_total", "admission_wait_seconds", "runtime_goroutines", "runtime_heap_alloc_bytes"} {
		if !bytes.Contains([]byte(text), []byte(want)) {
			t.Errorf("/metrics missing %s under overload", want)
		}
	}
}

// TestSoakDrainShutdown is the seeded kill-under-load soak: flexload
// -overload hammers a journaled daemon-shaped server, a drain begins
// mid-run (the SIGTERM path: stop admitting, finish in-flight work,
// close the journal with its final snapshot), and the recovered store
// must hold exactly the offers the clients saw acknowledged — zero
// acked-offer loss across the drain.
func TestSoakDrainShutdown(t *testing.T) {
	dir := t.TempDir()
	store, journal, err := market.OpenJournaled(market.JournalOptions{Dir: dir, SnapshotEvery: 64})
	if err != nil {
		t.Fatalf("OpenJournaled: %v", err)
	}

	h, ctrl, _ := overloadHandler(store, nil)
	srv := httptest.NewServer(h)

	duration := 3 * time.Second
	if testing.Short() {
		duration = 1500 * time.Millisecond
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	type result struct {
		rep Report
		err error
	}
	done := make(chan result, 1)
	go func() {
		rep, err := run(ctx, config{
			BaseURL:     srv.URL,
			Concurrency: 8,
			Duration:    duration,
			Seed:        13,
			Overload:    true,
			HTTPClient:  srv.Client(),
		})
		done <- result{rep, err}
	}()

	// Mid-soak SIGTERM: stop admitting new non-ops work, then drain the
	// in-flight requests bounded by the drain budget.
	time.Sleep(duration / 3)
	ctrl.BeginDrain()
	drainCtx, drainCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer drainCancel()
	if err := srv.Config.Shutdown(drainCtx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	cancel() // the server is gone; stop the generator
	res := <-done
	if res.err != nil {
		t.Fatal(res.err)
	}
	rep := res.rep
	if rep.OffersSubmitted == 0 {
		t.Fatal("nothing admitted before the drain; the soak exercised nothing")
	}
	if rep.Overload == nil || rep.Overload.Shed429+rep.Overload.Shed503 == 0 {
		t.Fatal("overload+drain produced no sheds")
	}

	// The drain ran the final snapshot path: close the journal (as the
	// daemon's deferred close does) and recover into a fresh store.
	if err := journal.Close(); err != nil {
		t.Fatalf("journal close: %v", err)
	}
	store2, journal2, err := market.OpenJournaled(market.JournalOptions{Dir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer journal2.Close()

	// Zero acked-offer loss across the drain: every submission a client
	// saw acknowledged is in the recovered store, with its lifecycle
	// state intact.
	if got := len(store2.List()); got != int(rep.OffersSubmitted) {
		t.Fatalf("recovered %d offers, clients saw %d acked submissions", got, rep.OffersSubmitted)
	}
	if counts := store2.Stats(); counts.Assigned != int(rep.OffersAssigned) {
		t.Fatalf("recovered %d assignments, clients confirmed %d", counts.Assigned, rep.OffersAssigned)
	}
	srv.Close()
}
