package main

import (
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/flexoffer"
	"repro/internal/timeseries"
)

func writeDayCSV(t *testing.T, path string) {
	t.Helper()
	vals := make([]float64, 96)
	for i := range vals {
		frac := float64(i) / 4
		vals[i] = 0.2 + 0.7*math.Exp(-(frac-19)*(frac-19)/4)
	}
	s := timeseries.MustNew(time.Date(2012, 6, 4, 0, 0, 0, 0, time.UTC), 15*time.Minute, vals)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := s.WriteCSV(f); err != nil {
		t.Fatal(err)
	}
}

func writeOffersJSON(t *testing.T, path string) {
	t.Helper()
	set := flexoffer.Set{{
		ID:            "o1",
		EarliestStart: time.Date(2012, 6, 4, 18, 0, 0, 0, time.UTC),
		LatestStart:   time.Date(2012, 6, 4, 21, 0, 0, 0, time.UTC),
		Profile:       flexoffer.UniformProfile(4, 15*time.Minute, 0.2, 0.4),
	}}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := set.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
}

func TestRunPlotsSeriesAndOffers(t *testing.T) {
	dir := t.TempDir()
	csv := filepath.Join(dir, "day.csv")
	offers := filepath.Join(dir, "offers.json")
	writeDayCSV(t, csv)
	writeOffersJSON(t, offers)

	if err := run(csv, "", "", 8); err != nil {
		t.Fatalf("plot without offers: %v", err)
	}
	if err := run(csv, offers, "2012-06-04", 8); err != nil {
		t.Fatalf("plot with offers: %v", err)
	}
}

func TestRunErrorsPlot(t *testing.T) {
	dir := t.TempDir()
	csv := filepath.Join(dir, "day.csv")
	writeDayCSV(t, csv)
	if err := run(filepath.Join(dir, "nope.csv"), "", "", 8); err == nil {
		t.Error("missing csv accepted")
	}
	if err := run(csv, "", "not-a-date", 8); err == nil {
		t.Error("bad date accepted")
	}
	if err := run(csv, "", "2030-01-01", 8); err == nil {
		t.Error("out-of-range day accepted")
	}
	if err := run(csv, filepath.Join(dir, "nope.json"), "", 8); err == nil {
		t.Error("missing offers file accepted")
	}
}
