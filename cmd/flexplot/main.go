// Command flexplot renders a consumption CSV and optionally a flex-offer
// JSON file as ASCII charts in the terminal — a quick look at what an
// extraction produced, in the spirit of the paper's Figs. 4 and 5.
//
// Usage:
//
//	flexplot -in house.csv
//	flexplot -in house.csv -offers offers.json -day 2012-06-04
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strings"
	"time"

	"repro/internal/flexoffer"
	"repro/internal/timeseries"
)

func main() {
	in := flag.String("in", "", "consumption CSV (required)")
	offersPath := flag.String("offers", "", "flex-offers JSON to overlay")
	day := flag.String("day", "", "plot a single day (YYYY-MM-DD); default: first day")
	height := flag.Int("height", 10, "chart height in rows")
	flag.Parse()

	if *in == "" {
		fmt.Fprintln(os.Stderr, "flexplot: -in is required")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*in, *offersPath, *day, *height); err != nil {
		fmt.Fprintf(os.Stderr, "flexplot: %v\n", err)
		os.Exit(1)
	}
}

func run(in, offersPath, day string, height int) error {
	f, err := os.Open(in)
	if err != nil {
		return err
	}
	series, err := timeseries.ReadCSV(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("read %s: %w", in, err)
	}

	var window *timeseries.Series
	if day != "" {
		d, err := time.Parse("2006-01-02", day)
		if err != nil {
			return fmt.Errorf("bad -day: %w", err)
		}
		window, err = series.Window(d, d.Add(24*time.Hour))
		if err != nil {
			return fmt.Errorf("day %s: %w", day, err)
		}
	} else {
		days := series.Days()
		if len(days) == 0 {
			return fmt.Errorf("empty series")
		}
		window = days[0]
	}

	plot(window, height)

	if offersPath != "" {
		of, err := os.Open(offersPath)
		if err != nil {
			return err
		}
		offers, err := flexoffer.ReadJSON(of)
		if cerr := of.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("read %s: %w", offersPath, err)
		}
		shown := 0
		fmt.Println()
		for _, fo := range offers {
			if _, ok := window.IndexOf(fo.EarliestStart); !ok {
				continue
			}
			overlay(window, fo)
			shown++
		}
		fmt.Printf("\n%d of %d offers fall on the plotted day\n", shown, len(offers))
	}
	return nil
}

// plot renders the series as a column chart with a mean marker.
func plot(s *timeseries.Series, height int) {
	maxV := s.Max()
	if maxV <= 0 || math.IsNaN(maxV) {
		maxV = 1
	}
	mean := s.Mean()
	fmt.Printf("%s .. %s  (%d x %v, total %.2f kWh, mean line '-')\n",
		s.Start().Format("2006-01-02 15:04"), s.End().Format("15:04"),
		s.Len(), s.Resolution(), s.Total())
	meanRow := int(math.Round(mean / maxV * float64(height)))
	for row := height; row >= 1; row-- {
		var b strings.Builder
		for i := 0; i < s.Len(); i++ {
			l := int(math.Round(s.Value(i) / maxV * float64(height)))
			switch {
			case l >= row:
				b.WriteByte('#')
			case row == meanRow:
				b.WriteByte('-')
			default:
				b.WriteByte(' ')
			}
		}
		fmt.Printf("|%s|\n", b.String())
	}
	fmt.Printf("+%s+\n", strings.Repeat("-", s.Len()))
}

// overlay prints one offer's span beneath the chart.
func overlay(axis *timeseries.Series, f *flexoffer.FlexOffer) {
	start, _ := axis.IndexOf(f.EarliestStart)
	line := []byte(strings.Repeat(" ", axis.Len()))
	for i := range f.Profile {
		if start+i < len(line) {
			line[start+i] = '='
		}
	}
	flexCols := int(f.TimeFlexibility() / axis.Resolution())
	for i := 0; i < flexCols; i++ {
		col := start + len(f.Profile) + i
		if col >= len(line) {
			break
		}
		if line[col] == ' ' {
			line[col] = '.'
		}
	}
	fmt.Printf("|%s| %s %.2f..%.2f kWh\n", string(line), f.ID, f.TotalMinEnergy(), f.TotalMaxEnergy())
}
